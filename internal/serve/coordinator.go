package serve

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"pok/internal/metrics"
	"pok/internal/sig"
	"pok/internal/soak"
)

// LeaseReadahead is the fleet's overlap-safety bound: a worker may run
// at most this many programs past the last heartbeat cursor the
// coordinator acknowledged, and a steal always splits at least
// LeaseReadahead+1 programs past the victim's last reported cursor.
// Together the two sides guarantee that a stolen range can never
// overlap work a victim computed during a heartbeat outage — the
// victim's true position is at most (acked cursor + readahead), the
// coordinator's liveCursor is at least the acked cursor (an ack the
// worker never received still advanced liveCursor), so the split point
// is strictly beyond anything the victim can have run.
const LeaseReadahead = 2

// Coordinator owns the fleet state: submitted jobs, the pending-cell
// queue, active leases and per-worker accounting. All methods are
// safe for concurrent use; lease expiry is applied lazily at the top
// of every call (reap), so no background janitor is required as long
// as anything — an idle worker polling, a dashboard refresh — touches
// the coordinator.
//
// With a journal attached (AttachJournal), every state transition is
// appended to the write-ahead log before the call returns, so a
// coordinator killed at any point can be restarted on the same journal
// and resume the wavefront exactly where it died.
type Coordinator struct {
	mu         sync.Mutex
	leaseTTL   time.Duration
	retryLimit int
	now        func() time.Time // injectable clock for tests

	jobs      map[string]*job
	order     []string // job ids in submission order
	queue     []*cell  // pending cells, FIFO
	leases    map[string]*cell
	workers   map[string]*workerInfo
	nextJob   int
	nextLease int

	// submitted maps a JobSpec.SubmitKey to its job id so a retried or
	// transport-duplicated submission cannot create a second job.
	submitted map[string]string
	// completed remembers finished lease ids so a retried Complete
	// whose first reply was lost is acknowledged instead of rejected.
	completed map[string]bool

	draining   bool
	journal    *Journal
	journalErr error
	replaying  bool

	// build is the provenance stamp surfaced on /api/status and
	// /metrics (SetBuild).
	build metrics.BuildInfo
	// samples is the bounded time-series ring behind the dashboard
	// sparklines and /api/metrics: one entry per snapshot-carrying
	// progress event (heartbeat advance, completion), oldest evicted
	// first. Samples are journaled with their timestamps, so a replayed
	// coordinator recovers the same ring.
	samples []MetricsSample
}

// metricsRingCap bounds the coordinator's sample ring.
const metricsRingCap = 512

// NewCoordinator builds a coordinator with the given lease TTL
// (0 = 10s). A worker that misses heartbeats for a full TTL is
// presumed dead and its cell is requeued from the last reported
// cursor.
func NewCoordinator(leaseTTL time.Duration) *Coordinator {
	if leaseTTL <= 0 {
		leaseTTL = 10 * time.Second
	}
	return &Coordinator{
		leaseTTL:   leaseTTL,
		retryLimit: 3,
		now:        time.Now,
		jobs:       make(map[string]*job),
		leases:     make(map[string]*cell),
		workers:    make(map[string]*workerInfo),
		submitted:  make(map[string]string),
		completed:  make(map[string]bool),
	}
}

// LeaseTTL reports the coordinator's lease duration (workers size
// their keepalive interval from the copy in each Assignment).
func (c *Coordinator) LeaseTTL() time.Duration { return c.leaseTTL }

// SetRetryLimit overrides how many times a cell may fail or expire
// before its whole job is marked failed (default 3).
func (c *Coordinator) SetRetryLimit(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.retryLimit = n
}

// SetBuild stamps the coordinator's provenance (git SHA, go version),
// surfaced on /api/status, /api/metrics and the pok_build_info series.
func (c *Coordinator) SetBuild(b metrics.BuildInfo) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.build = b
}

type cellState int

const (
	cellPending cellState = iota
	cellLeased
	cellDone
)

func (s cellState) String() string {
	switch s {
	case cellPending:
		return "pending"
	case cellLeased:
		return "leased"
	default:
		return "done"
	}
}

// cell is one shard of a job: a [start, end) soak program range, or a
// single benchmark of a bench sweep. cursor is the committed resume
// frontier — programs in [origin start, cursor) are covered by
// baseFindings/baseRuns (folded in from expired or failed leases);
// the live* fields mirror the current lease's last heartbeat.
type cell struct {
	job       *job
	id        int
	kind      string
	start     int // original range start (wavefront / merge order)
	end       int // exclusive; shrinks when the tail is stolen
	benchmark string

	state        cellState
	cursor       int
	baseFindings []soak.Finding
	baseRuns     int
	liveCursor   int
	liveFindings []soak.Finding
	liveRuns     int
	fails        int

	// resume is the committed instruction-granular cursor: always
	// positioned at `cursor` (the next program), it re-arms the next
	// lease's Assignment so a reaped or released worker's mid-program
	// snapshot is not lost. liveResume is the current lease's latest
	// heartbeat cursor, folded into resume on requeue exactly like
	// liveFindings/liveRuns fold into the base. Both are in-memory
	// only — the journal excludes snapshot blobs, so a coordinator
	// restart resumes at program granularity.
	resume     *ResumeCursor
	liveResume *ResumeCursor

	// Metrics snapshots mirror the findings handling: baseSnap holds
	// folded-in accumulators from expired/released leases, liveSnap the
	// current lease's last reported accumulator, snap the final merged
	// outcome at completion.
	baseSnap *metrics.Snapshot
	liveSnap *metrics.Snapshot
	snap     *metrics.Snapshot

	// final outcome
	findings []soak.Finding
	runs     int
	rows     []BenchRow

	lease      string
	worker     string
	nonce      string // worker-chosen lease-request nonce (dedupe)
	grantStart int    // Assignment.Start handed out with the lease
	expiry     time.Time
}

type job struct {
	id        string
	spec      JobSpec
	cells     []*cell
	submitted time.Time
	failed    string
}

func (j *job) done() bool {
	for _, c := range j.cells {
		if c.state != cellDone {
			return false
		}
	}
	return true
}

func (j *job) state() string {
	switch {
	case j.failed != "":
		return "failed"
	case j.done():
		return "done"
	default:
		for _, c := range j.cells {
			if c.state != cellPending {
				return "running"
			}
		}
		return "queued"
	}
}

type workerInfo struct {
	name      string
	firstSeen time.Time
	lastSeen  time.Time
	programs  int
	findings  int
	cells     int
	stats     *WorkerStats // last self-reported stats snapshot

	// Cumulative simulation throughput, accumulated as deltas between
	// consecutive snapshot reports of each lease. Ephemeral worker
	// bookkeeping — like stats, not journaled.
	insts     uint64
	cycles    int64
	wallNanos int64
}

// foldSnapDelta accrues the growth between a lease's previous and
// current snapshot into the worker's cumulative throughput counters.
func (w *workerInfo) foldSnapDelta(prev, cur *metrics.Snapshot) {
	if cur == nil {
		return
	}
	var pi uint64
	var pc, pw int64
	if prev != nil {
		pi, pc, pw = prev.Insts, prev.Cycles, prev.WallNanos
	}
	if cur.Insts > pi {
		w.insts += cur.Insts - pi
	}
	if cur.Cycles > pc {
		w.cycles += cur.Cycles - pc
	}
	if cur.WallNanos > pw {
		w.wallNanos += cur.WallNanos - pw
	}
}

// buildJobLocked shards a normalized spec into a job. It is shared by
// Submit and journal replay, so the sharding must be a pure function
// of the spec.
func (c *Coordinator) buildJobLocked(id string, spec JobSpec) *job {
	j := &job{id: id, spec: spec, submitted: c.now().UTC()}
	switch spec.Kind {
	case "soak":
		size := spec.Soak.cellSize()
		for lo := 0; lo < spec.Soak.Programs; lo += size {
			hi := min(lo+size, spec.Soak.Programs)
			j.cells = append(j.cells, &cell{
				job: j, id: len(j.cells), kind: "soak",
				start: lo, end: hi, cursor: lo, liveCursor: lo,
			})
		}
	case "bench":
		for i, b := range spec.Bench.Benchmarks {
			j.cells = append(j.cells, &cell{
				job: j, id: i, kind: "bench",
				start: i, end: i + 1, cursor: i, liveCursor: i,
				benchmark: b,
			})
		}
	}
	return j
}

// Submit validates, normalizes and shards a job, returning its id.
// A spec carrying a SubmitKey the coordinator has seen before returns
// the existing job's id instead of creating a duplicate — that makes
// submission safe to retry over a lossy transport.
func (c *Coordinator) Submit(spec JobSpec) (string, error) {
	if err := spec.normalize(); err != nil {
		return "", err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if spec.SubmitKey != "" {
		if id, ok := c.submitted[spec.SubmitKey]; ok {
			return id, nil
		}
	}
	if c.draining {
		return "", fmt.Errorf("serve: coordinator is draining; not accepting jobs")
	}
	c.nextJob++
	j := c.buildJobLocked(fmt.Sprintf("job-%d", c.nextJob), spec)
	c.jobs[j.id] = j
	c.order = append(c.order, j.id)
	c.queue = append(c.queue, j.cells...)
	if spec.SubmitKey != "" {
		c.submitted[spec.SubmitKey] = j.id
	}
	c.journalAppend(journalRecord{T: recSubmit, Job: j.id, Spec: &spec}, true)
	return j.id, nil
}

// Lease hands the next pending cell to worker, stealing the tail of a
// running soak cell when the queue is empty. It returns nil when there
// is no work (or the coordinator is draining). A non-empty nonce makes
// the call idempotent: retrying (or a transport duplicating) the same
// worker+nonce returns the original assignment instead of leaking a
// second lease that could only expire into a retry strike.
func (c *Coordinator) Lease(worker, nonce string) *Assignment {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reap()
	w := c.touch(worker)

	if nonce != "" {
		for _, cl := range c.leases {
			if cl.worker == worker && cl.nonce == nonce {
				cl.expiry = c.now().Add(c.leaseTTL)
				return c.assignmentLocked(cl)
			}
		}
	}
	if c.draining {
		return nil
	}

	var cl *cell
	for len(c.queue) > 0 {
		cand := c.queue[0]
		c.queue = c.queue[1:]
		if cand.state == cellPending && cand.job.failed == "" {
			cl = cand
			break
		}
	}
	if cl == nil {
		cl = c.steal()
	}
	if cl == nil {
		return nil
	}

	c.nextLease++
	c.grantLocked(cl, fmt.Sprintf("lease-%d", c.nextLease), worker, nonce)
	w.cells++
	c.journalAppend(journalRecord{
		T: recLease, Lease: cl.lease, Job: cl.job.id, Cell: cl.id,
		Worker: worker, Nonce: nonce, Cursor: cl.grantStart,
	}, true)
	return c.assignmentLocked(cl)
}

// grantLocked marks a cell leased. Shared by Lease and journal replay.
func (c *Coordinator) grantLocked(cl *cell, lease, worker, nonce string) {
	cl.state = cellLeased
	cl.lease = lease
	cl.worker = worker
	cl.nonce = nonce
	cl.grantStart = cl.cursor
	cl.expiry = c.now().Add(c.leaseTTL)
	cl.liveCursor = cl.cursor
	cl.liveFindings = nil
	cl.liveRuns = 0
	cl.liveSnap = nil
	cl.liveResume = nil
	c.leases[lease] = cl
}

func (c *Coordinator) assignmentLocked(cl *cell) *Assignment {
	a := &Assignment{
		Lease:     cl.lease,
		Job:       cl.job.id,
		Cell:      cl.id,
		Kind:      cl.kind,
		Start:     cl.grantStart,
		End:       cl.end,
		Benchmark: cl.benchmark,
		LeaseTTL:  c.leaseTTL,
		Spec:      cl.job.spec,
	}
	if cl.resume != nil && cl.resume.Program == cl.grantStart {
		a.Resume = cl.resume
	}
	return a
}

// steal splits the running soak cell with the most remaining programs.
// The split point mid is at least LeaseReadahead+1 programs past the
// victim's last reported cursor: the victim never runs more than
// LeaseReadahead programs past a cursor the coordinator acknowledged
// (see LeaseReadahead), so even a victim that has been computing
// through a heartbeat outage stops before mid — no overlap, no gap.
func (c *Coordinator) steal() *cell {
	var victim *cell
	best := 0
	for _, cl := range c.leases {
		if cl.kind != "soak" || cl.job.failed != "" {
			continue
		}
		if remaining := cl.end - cl.liveCursor; remaining >= 4 && remaining > best {
			victim, best = cl, remaining
		}
	}
	if victim == nil {
		return nil
	}
	mid := max(victim.liveCursor+best/2, victim.liveCursor+LeaseReadahead+1)
	if victim.end-mid < 2 {
		return nil
	}
	stolen := &cell{
		job: victim.job, id: len(victim.job.cells), kind: "soak",
		start: mid, end: victim.end, cursor: mid, liveCursor: mid,
	}
	c.journalAppend(journalRecord{
		T: recSteal, Job: victim.job.id, Victim: victim.id,
		Cell: stolen.id, Mid: mid,
	}, true)
	victim.end = mid
	victim.job.cells = append(victim.job.cells, stolen)
	return stolen
}

// Heartbeat extends a lease and records the worker's progress. The
// reply carries the cell's current end bound — which may have shrunk
// since the last heartbeat if the tail was stolen — and Cancel when
// the lease is no longer valid (expired and requeued, or the job
// failed), telling the worker to abandon the cell.
func (c *Coordinator) Heartbeat(hb Heartbeat) HeartbeatReply {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reap()
	w := c.touch(hb.Worker)
	if hb.Stats != nil {
		w.stats = hb.Stats
	}
	cl, ok := c.leases[hb.Lease]
	if !ok || cl.job.failed != "" {
		return HeartbeatReply{Cancel: true}
	}
	if hb.Cursor > cl.liveCursor {
		w.programs += hb.Cursor - cl.liveCursor
	}
	w.findings += len(hb.Findings) - len(cl.liveFindings)
	advanced := hb.Cursor != cl.liveCursor || hb.Runs != cl.liveRuns ||
		len(hb.Findings) != len(cl.liveFindings)
	cl.liveCursor = hb.Cursor
	cl.liveFindings = hb.Findings
	cl.liveRuns = hb.Runs
	// The instruction-granular cursor is only meaningful while it
	// points inside the program the cursor stands on; a heartbeat at a
	// program boundary (nil Resume, or one for an older program)
	// invalidates any earlier mid-program position.
	if hb.Resume != nil && hb.Resume.Program == hb.Cursor {
		cl.liveResume = hb.Resume
	} else {
		cl.liveResume = nil
	}
	cl.expiry = c.now().Add(c.leaseTTL)
	ms := c.now().UnixMilli()
	if hb.Snapshot != nil {
		w.foldSnapDelta(cl.liveSnap, hb.Snapshot)
		cl.liveSnap = hb.Snapshot
	}
	if advanced {
		if hb.Snapshot != nil {
			// A duplicate heartbeat (retry or transport dup) reports the
			// same cursor/runs/findings, so gating the sample on advance
			// keeps the ring duplicate-free.
			c.appendSampleLocked(ms, hb.Worker, cl, hb.Snapshot)
		}
		// Cursor records are appended without fsync: losing the tail
		// of them to a crash only re-runs a few programs.
		c.journalAppend(journalRecord{
			T: recHB, Lease: hb.Lease, Worker: hb.Worker,
			Cursor: hb.Cursor, Runs: hb.Runs, Findings: hb.Findings,
			Snap: hb.Snapshot, Ms: ms,
		}, false)
	}
	return HeartbeatReply{End: cl.end}
}

// Complete finishes a leased cell. Completion against an expired or
// reassigned lease is rejected — the cell's range may have been
// requeued and partially re-covered, so accepting the stale result
// could double-count programs — but completing an already-completed
// lease succeeds idempotently, so a worker whose first reply was lost
// in transit can retry safely.
func (c *Coordinator) Complete(res CellResult) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reap()
	w := c.touch(res.Worker)
	cl, ok := c.leases[res.Lease]
	if !ok {
		if c.completed[res.Lease] {
			return nil
		}
		return fmt.Errorf("serve: unknown or expired lease %q", res.Lease)
	}
	if res.Cursor > cl.end {
		// Should be impossible under the readahead bound; reject so a
		// buggy worker cannot smuggle overlapping coverage into the
		// merged report.
		return fmt.Errorf("serve: lease %s completed at cursor %d beyond cell end %d",
			res.Lease, res.Cursor, cl.end)
	}
	if res.Cursor > cl.liveCursor {
		w.programs += res.Cursor - cl.liveCursor
	}
	w.findings += len(res.Findings) - len(cl.liveFindings)
	w.foldSnapDelta(cl.liveSnap, res.Snapshot)
	ms := c.now().UnixMilli()
	c.journalAppend(journalRecord{
		T: recComplete, Lease: res.Lease, Worker: res.Worker,
		Cursor: res.Cursor, Runs: res.Runs, Findings: res.Findings,
		Rows: res.Rows, Snap: res.Snapshot, Ms: ms,
	}, true)
	c.completeLocked(cl, res.Lease, res.Worker, ms, res.Runs, res.Findings, res.Rows, res.Snapshot)
	return nil
}

// completeLocked applies a completion. Shared with journal replay.
func (c *Coordinator) completeLocked(cl *cell, lease, worker string, ms int64,
	runs int, findings []soak.Finding, rows []BenchRow, snap *metrics.Snapshot) {
	delete(c.leases, lease)
	c.completed[lease] = true
	cl.state = cellDone
	cl.findings = append(cl.baseFindings, findings...)
	cl.runs = cl.baseRuns + runs
	cl.rows = rows
	cl.cursor = cl.end
	if snap != nil || cl.baseSnap != nil {
		final := &metrics.Snapshot{}
		final.Merge(cl.baseSnap)
		final.Merge(snap)
		cl.snap = final
	}
	if snap != nil {
		c.appendSampleLocked(ms, worker, cl, snap)
	}
	cl.baseSnap, cl.liveSnap = nil, nil
	cl.resume, cl.liveResume = nil, nil
	cl.lease, cl.worker, cl.nonce = "", "", ""
	cl.liveFindings, cl.liveRuns = nil, 0
}

// Release hands a lease back cleanly — a draining worker finished its
// current program, heartbeat its final cursor and is exiting. The
// partial results fold into the cell's committed base and the cell
// requeues at the released cursor without a retry strike.
func (c *Coordinator) Release(rel ReleaseRequest) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reap()
	w := c.touch(rel.Worker)
	cl, ok := c.leases[rel.Lease]
	if !ok {
		return
	}
	if rel.Cursor > cl.liveCursor {
		w.programs += rel.Cursor - cl.liveCursor
	}
	w.findings += len(rel.Findings) - len(cl.liveFindings)
	w.foldSnapDelta(cl.liveSnap, rel.Snapshot)
	c.journalAppend(journalRecord{
		T: recRelease, Lease: rel.Lease, Worker: rel.Worker,
		Cursor: rel.Cursor, Runs: rel.Runs, Findings: rel.Findings,
		Snap: rel.Snapshot,
	}, true)
	delete(c.leases, rel.Lease)
	cl.liveCursor = rel.Cursor
	cl.liveRuns = rel.Runs
	cl.liveFindings = rel.Findings
	if rel.Resume != nil && rel.Resume.Program == rel.Cursor {
		cl.liveResume = rel.Resume
	} else {
		cl.liveResume = nil
	}
	if rel.Snapshot != nil {
		cl.liveSnap = rel.Snapshot
	}
	c.requeueLocked(cl)
}

// Fail reports a hard worker-side error (not a finding — findings are
// results). The cell is requeued from its last reported cursor; after
// retryLimit failures the whole job is marked failed and its pending
// cells are dropped.
func (c *Coordinator) Fail(lease, worker, msg string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reap()
	c.touch(worker)
	cl, ok := c.leases[lease]
	if !ok {
		return
	}
	c.journalAppend(journalRecord{T: recFail, Lease: lease, Worker: worker, Msg: msg}, true)
	delete(c.leases, lease)
	c.requeueLocked(cl)
	c.strikeLocked(cl, msg)
}

// strikeLocked counts one failure/expiry against a cell and fails the
// whole job past the retry budget.
func (c *Coordinator) strikeLocked(cl *cell, msg string) {
	cl.fails++
	if cl.fails > c.retryLimit {
		cl.job.failed = fmt.Sprintf("cell %d failed %d times: %s", cl.id, cl.fails, msg)
	}
}

// reap requeues every cell whose lease expired, folding the last
// heartbeat's partial results into the cell's committed base so the
// next worker resumes exactly at the dead worker's cursor.
func (c *Coordinator) reap() {
	now := c.now()
	for id, cl := range c.leases {
		if now.After(cl.expiry) {
			c.journalAppend(journalRecord{T: recExpire, Lease: id}, true)
			delete(c.leases, id)
			c.requeueLocked(cl)
			c.strikeLocked(cl, "lease expired")
		}
	}
}

func (c *Coordinator) requeueLocked(cl *cell) {
	cl.baseFindings = append(cl.baseFindings, cl.liveFindings...)
	cl.baseRuns += cl.liveRuns
	if cl.liveSnap != nil {
		if cl.baseSnap == nil {
			cl.baseSnap = &metrics.Snapshot{}
		}
		cl.baseSnap.Merge(cl.liveSnap)
		cl.liveSnap = nil
	}
	cl.cursor = max(cl.cursor, cl.liveCursor)
	// Commit the lease's mid-program cursor if it still matches the
	// folded program cursor; keep an earlier committed one when the
	// dead lease made no progress at all; drop anything stale.
	switch {
	case cl.liveResume != nil && cl.liveResume.Program == cl.cursor:
		cl.resume = cl.liveResume
	case cl.resume != nil && cl.resume.Program == cl.cursor:
		// keep
	default:
		cl.resume = nil
	}
	cl.liveResume = nil
	cl.liveFindings, cl.liveRuns = nil, 0
	cl.liveCursor = cl.cursor
	cl.state = cellPending
	cl.lease, cl.worker, cl.nonce = "", "", ""
	c.queue = append(c.queue, cl)
}

// appendSampleLocked pushes one time-series sample into the bounded
// ring, evicting the oldest entry at capacity. Called on the live path
// and from journal replay with the journaled timestamp, so a recovered
// coordinator rebuilds the identical ring.
func (c *Coordinator) appendSampleLocked(ms int64, worker string, cl *cell, snap *metrics.Snapshot) {
	s := MetricsSample{
		Ms: ms, Worker: worker, Job: cl.job.id, Cell: cl.id,
		Cursor:   max(cl.cursor, cl.liveCursor),
		Programs: snap.Programs, Insts: snap.Insts, Cycles: snap.Cycles,
		WallNanos: snap.WallNanos, Findings: snap.Findings,
	}
	if len(c.samples) >= metricsRingCap {
		copy(c.samples, c.samples[1:])
		c.samples[len(c.samples)-1] = s
		return
	}
	c.samples = append(c.samples, s)
}

// cellSnapLocked assembles a cell's current metrics accumulator: the
// final snapshot for done cells, otherwise committed base + live lease
// merged into a fresh value (never aliasing cell state).
func cellSnapLocked(cl *cell) *metrics.Snapshot {
	if cl.state == cellDone {
		return cl.snap
	}
	if cl.baseSnap == nil && cl.liveSnap == nil {
		return nil
	}
	acc := &metrics.Snapshot{}
	acc.Merge(cl.baseSnap)
	acc.Merge(cl.liveSnap)
	return acc
}

func (c *Coordinator) touch(name string) *workerInfo {
	if name == "" {
		name = "anonymous"
	}
	w, ok := c.workers[name]
	if !ok {
		w = &workerInfo{name: name, firstSeen: c.now()}
		c.workers[name] = w
	}
	w.lastSeen = c.now()
	return w
}

// Result assembles a completed job's merged outcome. Soak findings
// merge in cell start order; because cells partition [0, Programs)
// and each cell's findings are already in program order, the merged
// list is exactly the single-process campaign's list.
func (c *Coordinator) Result(id string) (*JobResult, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reap()
	j, ok := c.jobs[id]
	if !ok {
		return nil, fmt.Errorf("serve: unknown job %q", id)
	}
	if j.failed != "" {
		return nil, fmt.Errorf("serve: job %s failed: %s", id, j.failed)
	}
	if !j.done() {
		return nil, fmt.Errorf("serve: job %s is not finished", id)
	}
	cells := append([]*cell(nil), j.cells...)
	sort.Slice(cells, func(a, b int) bool { return cells[a].start < cells[b].start })
	switch j.spec.Kind {
	case "soak":
		s := j.spec.Soak
		rep := &soak.Report{
			BaseSeed:    s.BaseSeed,
			Programs:    s.Programs,
			Configs:     s.Configs,
			Schedulers:  s.Schedulers,
			InjectSeeds: s.InjectSeeds,
		}
		for _, cl := range cells {
			rep.Runs += cl.runs
			rep.Findings = append(rep.Findings, cl.findings...)
		}
		return &JobResult{Soak: rep}, nil
	default:
		var rows []BenchRow
		for _, cl := range cells {
			rows = append(rows, cl.rows...)
		}
		return &JobResult{Bench: rows}, nil
	}
}

// Status snapshots the whole fleet for the dashboard and the status
// endpoint.
func (c *Coordinator) Status() *Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reap()
	st := &Status{
		LeaseTTLMillis: c.leaseTTL.Milliseconds(),
		Draining:       c.draining,
	}
	if c.build != (metrics.BuildInfo{}) {
		b := c.build
		st.Build = &b
	}
	if c.journal != nil {
		st.Journal = c.journal.Path()
	}
	if c.journalErr != nil {
		st.JournalError = c.journalErr.Error()
	}
	for _, id := range c.order {
		for _, cl := range c.jobs[id].cells {
			if s := cellSnapLocked(cl); s != nil {
				st.EventsDropped += s.EventsDropped
			}
		}
	}
	for _, cl := range c.queue {
		if cl.state == cellPending && cl.job.failed == "" {
			st.QueueDepth++
		}
	}
	names := make([]string, 0, len(c.workers))
	for n := range c.workers {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		w := c.workers[n]
		ws := WorkerStatus{
			Name:           w.name,
			LastSeenMillis: w.lastSeen.UnixMilli(),
			Programs:       w.programs,
			Findings:       w.findings,
			Cells:          w.cells,
			Stats:          w.stats,
		}
		if alive := w.lastSeen.Sub(w.firstSeen); alive > 0 {
			ws.ProgramsPerSec = float64(w.programs) / alive.Seconds()
		}
		st.Workers = append(st.Workers, ws)
	}
	for _, id := range c.order {
		j := c.jobs[id]
		js := JobStatus{ID: j.id, Kind: j.spec.Kind, State: j.state(), Failed: j.failed}
		var dedupe sig.Deduper
		cells := append([]*cell(nil), j.cells...)
		sort.Slice(cells, func(a, b int) bool { return cells[a].start < cells[b].start })
		for _, cl := range cells {
			cursor := max(cl.cursor, cl.liveCursor)
			cs := CellStatus{
				ID: cl.id, Start: cl.start, End: cl.end, Cursor: cursor,
				State: cl.state.String(), Worker: cl.worker,
			}
			known := cl.findings
			if cl.state != cellDone {
				known = append(append([]soak.Finding(nil), cl.baseFindings...), cl.liveFindings...)
			}
			cs.Findings = len(known)
			for _, f := range known {
				dedupe.Add(f.Signature())
				if len(js.Feed) < feedLimit {
					js.Feed = append(js.Feed, f)
				}
			}
			js.Findings += len(known)
			if cl.state == cellDone {
				js.Runs += cl.runs
			} else {
				js.Runs += cl.baseRuns + cl.liveRuns
			}
			js.Programs += cl.end - cl.start
			js.Done += cursor - cl.start
			js.Cells = append(js.Cells, cs)
		}
		js.Deduped = dedupe.Classes()
		st.Jobs = append(st.Jobs, js)
	}
	return st
}

// feedLimit bounds the findings feed per job in status snapshots.
const feedLimit = 50
