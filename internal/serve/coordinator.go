package serve

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"pok/internal/sig"
	"pok/internal/soak"
)

// Coordinator owns the fleet state: submitted jobs, the pending-cell
// queue, active leases and per-worker accounting. All methods are
// safe for concurrent use; lease expiry is applied lazily at the top
// of every call (reap), so no background janitor is required as long
// as anything — an idle worker polling, a dashboard refresh — touches
// the coordinator.
type Coordinator struct {
	mu         sync.Mutex
	leaseTTL   time.Duration
	retryLimit int
	now        func() time.Time // injectable clock for tests

	jobs      map[string]*job
	order     []string // job ids in submission order
	queue     []*cell  // pending cells, FIFO
	leases    map[string]*cell
	workers   map[string]*workerInfo
	nextJob   int
	nextLease int
}

// NewCoordinator builds a coordinator with the given lease TTL
// (0 = 10s). A worker that misses heartbeats for a full TTL is
// presumed dead and its cell is requeued from the last reported
// cursor.
func NewCoordinator(leaseTTL time.Duration) *Coordinator {
	if leaseTTL <= 0 {
		leaseTTL = 10 * time.Second
	}
	return &Coordinator{
		leaseTTL:   leaseTTL,
		retryLimit: 3,
		now:        time.Now,
		jobs:       make(map[string]*job),
		leases:     make(map[string]*cell),
		workers:    make(map[string]*workerInfo),
	}
}

// LeaseTTL reports the coordinator's lease duration (workers size
// their keepalive interval from the copy in each Assignment).
func (c *Coordinator) LeaseTTL() time.Duration { return c.leaseTTL }

type cellState int

const (
	cellPending cellState = iota
	cellLeased
	cellDone
)

func (s cellState) String() string {
	switch s {
	case cellPending:
		return "pending"
	case cellLeased:
		return "leased"
	default:
		return "done"
	}
}

// cell is one shard of a job: a [start, end) soak program range, or a
// single benchmark of a bench sweep. cursor is the committed resume
// frontier — programs in [origin start, cursor) are covered by
// baseFindings/baseRuns (folded in from expired or failed leases);
// the live* fields mirror the current lease's last heartbeat.
type cell struct {
	job       *job
	id        int
	kind      string
	start     int // original range start (wavefront / merge order)
	end       int // exclusive; shrinks when the tail is stolen
	benchmark string

	state        cellState
	cursor       int
	baseFindings []soak.Finding
	baseRuns     int
	liveCursor   int
	liveFindings []soak.Finding
	liveRuns     int
	fails        int

	// final outcome
	findings []soak.Finding
	runs     int
	rows     []BenchRow

	lease  string
	worker string
	expiry time.Time
}

type job struct {
	id        string
	spec      JobSpec
	cells     []*cell
	submitted time.Time
	failed    string
}

func (j *job) done() bool {
	for _, c := range j.cells {
		if c.state != cellDone {
			return false
		}
	}
	return true
}

func (j *job) state() string {
	switch {
	case j.failed != "":
		return "failed"
	case j.done():
		return "done"
	default:
		for _, c := range j.cells {
			if c.state != cellPending {
				return "running"
			}
		}
		return "queued"
	}
}

type workerInfo struct {
	name      string
	firstSeen time.Time
	lastSeen  time.Time
	programs  int
	findings  int
	cells     int
}

// Submit validates, normalizes and shards a job, returning its id.
func (c *Coordinator) Submit(spec JobSpec) (string, error) {
	if err := spec.normalize(); err != nil {
		return "", err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextJob++
	j := &job{
		id:        fmt.Sprintf("job-%d", c.nextJob),
		spec:      spec,
		submitted: c.now().UTC(),
	}
	switch spec.Kind {
	case "soak":
		size := spec.Soak.cellSize()
		for lo := 0; lo < spec.Soak.Programs; lo += size {
			hi := min(lo+size, spec.Soak.Programs)
			j.cells = append(j.cells, &cell{
				job: j, id: len(j.cells), kind: "soak",
				start: lo, end: hi, cursor: lo, liveCursor: lo,
			})
		}
	case "bench":
		for i, b := range spec.Bench.Benchmarks {
			j.cells = append(j.cells, &cell{
				job: j, id: i, kind: "bench",
				start: i, end: i + 1, cursor: i, liveCursor: i,
				benchmark: b,
			})
		}
	}
	c.jobs[j.id] = j
	c.order = append(c.order, j.id)
	c.queue = append(c.queue, j.cells...)
	return j.id, nil
}

// Lease hands the next pending cell to worker, stealing the tail of a
// running soak cell when the queue is empty. It returns nil when there
// is no work.
func (c *Coordinator) Lease(worker string) *Assignment {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reap()
	w := c.touch(worker)

	var cl *cell
	for len(c.queue) > 0 {
		cand := c.queue[0]
		c.queue = c.queue[1:]
		if cand.state == cellPending && cand.job.failed == "" {
			cl = cand
			break
		}
	}
	if cl == nil {
		cl = c.steal()
	}
	if cl == nil {
		return nil
	}

	c.nextLease++
	cl.state = cellLeased
	cl.lease = fmt.Sprintf("lease-%d", c.nextLease)
	cl.worker = worker
	cl.expiry = c.now().Add(c.leaseTTL)
	cl.liveCursor = cl.cursor
	cl.liveFindings = nil
	cl.liveRuns = 0
	c.leases[cl.lease] = cl
	w.cells++

	return &Assignment{
		Lease:     cl.lease,
		Job:       cl.job.id,
		Cell:      cl.id,
		Kind:      cl.kind,
		Start:     cl.cursor,
		End:       cl.end,
		Benchmark: cl.benchmark,
		LeaseTTL:  c.leaseTTL,
		Spec:      cl.job.spec,
	}
}

// steal splits the running soak cell with the most remaining programs.
// The split point mid is at least two programs past the victim's last
// reported cursor: the victim heartbeats after every program, so it
// learns end=mid while it is at most one program past that cursor and
// stops before mid — no overlap, no gap.
func (c *Coordinator) steal() *cell {
	var victim *cell
	best := 0
	for _, cl := range c.leases {
		if cl.kind != "soak" || cl.job.failed != "" {
			continue
		}
		if remaining := cl.end - cl.liveCursor; remaining >= 4 && remaining > best {
			victim, best = cl, remaining
		}
	}
	if victim == nil {
		return nil
	}
	mid := victim.liveCursor + best/2
	stolen := &cell{
		job: victim.job, id: len(victim.job.cells), kind: "soak",
		start: mid, end: victim.end, cursor: mid, liveCursor: mid,
	}
	victim.end = mid
	victim.job.cells = append(victim.job.cells, stolen)
	return stolen
}

// Heartbeat extends a lease and records the worker's progress. The
// reply carries the cell's current end bound — which may have shrunk
// since the last heartbeat if the tail was stolen — and Cancel when
// the lease is no longer valid (expired and requeued, or the job
// failed), telling the worker to abandon the cell.
func (c *Coordinator) Heartbeat(hb Heartbeat) HeartbeatReply {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reap()
	w := c.touch(hb.Worker)
	cl, ok := c.leases[hb.Lease]
	if !ok || cl.job.failed != "" {
		return HeartbeatReply{Cancel: true}
	}
	if hb.Cursor > cl.liveCursor {
		w.programs += hb.Cursor - cl.liveCursor
	}
	w.findings += len(hb.Findings) - len(cl.liveFindings)
	cl.liveCursor = hb.Cursor
	cl.liveFindings = hb.Findings
	cl.liveRuns = hb.Runs
	cl.expiry = c.now().Add(c.leaseTTL)
	return HeartbeatReply{End: cl.end}
}

// Complete finishes a leased cell. Completion against an expired or
// reassigned lease is rejected: the cell's range may have been
// requeued and partially re-covered, so accepting the stale result
// could double-count programs.
func (c *Coordinator) Complete(res CellResult) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reap()
	w := c.touch(res.Worker)
	cl, ok := c.leases[res.Lease]
	if !ok {
		return fmt.Errorf("serve: unknown or expired lease %q", res.Lease)
	}
	if res.Cursor > cl.liveCursor {
		w.programs += res.Cursor - cl.liveCursor
	}
	w.findings += len(res.Findings) - len(cl.liveFindings)
	delete(c.leases, res.Lease)
	cl.state = cellDone
	cl.findings = append(cl.baseFindings, res.Findings...)
	cl.runs = cl.baseRuns + res.Runs
	cl.rows = res.Rows
	cl.cursor = cl.end
	cl.lease, cl.worker = "", ""
	cl.liveFindings, cl.liveRuns = nil, 0
	return nil
}

// Fail reports a hard worker-side error (not a finding — findings are
// results). The cell is requeued from its last reported cursor; after
// retryLimit failures the whole job is marked failed and its pending
// cells are dropped.
func (c *Coordinator) Fail(lease, worker, msg string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reap()
	c.touch(worker)
	cl, ok := c.leases[lease]
	if !ok {
		return
	}
	delete(c.leases, lease)
	c.requeueLocked(cl)
	cl.fails++
	if cl.fails > c.retryLimit {
		cl.job.failed = fmt.Sprintf("cell %d failed %d times: %s", cl.id, cl.fails, msg)
	}
}

// reap requeues every cell whose lease expired, folding the last
// heartbeat's partial results into the cell's committed base so the
// next worker resumes exactly at the dead worker's cursor.
func (c *Coordinator) reap() {
	now := c.now()
	for id, cl := range c.leases {
		if now.After(cl.expiry) {
			delete(c.leases, id)
			c.requeueLocked(cl)
			cl.fails++
			if cl.fails > c.retryLimit {
				cl.job.failed = fmt.Sprintf("cell %d: lease expired %d times", cl.id, cl.fails)
			}
		}
	}
}

func (c *Coordinator) requeueLocked(cl *cell) {
	cl.baseFindings = append(cl.baseFindings, cl.liveFindings...)
	cl.baseRuns += cl.liveRuns
	cl.cursor = max(cl.cursor, cl.liveCursor)
	cl.liveFindings, cl.liveRuns = nil, 0
	cl.liveCursor = cl.cursor
	cl.state = cellPending
	cl.lease, cl.worker = "", ""
	c.queue = append(c.queue, cl)
}

func (c *Coordinator) touch(name string) *workerInfo {
	if name == "" {
		name = "anonymous"
	}
	w, ok := c.workers[name]
	if !ok {
		w = &workerInfo{name: name, firstSeen: c.now()}
		c.workers[name] = w
	}
	w.lastSeen = c.now()
	return w
}

// Result assembles a completed job's merged outcome. Soak findings
// merge in cell start order; because cells partition [0, Programs)
// and each cell's findings are already in program order, the merged
// list is exactly the single-process campaign's list.
func (c *Coordinator) Result(id string) (*JobResult, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reap()
	j, ok := c.jobs[id]
	if !ok {
		return nil, fmt.Errorf("serve: unknown job %q", id)
	}
	if j.failed != "" {
		return nil, fmt.Errorf("serve: job %s failed: %s", id, j.failed)
	}
	if !j.done() {
		return nil, fmt.Errorf("serve: job %s is not finished", id)
	}
	cells := append([]*cell(nil), j.cells...)
	sort.Slice(cells, func(a, b int) bool { return cells[a].start < cells[b].start })
	switch j.spec.Kind {
	case "soak":
		s := j.spec.Soak
		rep := &soak.Report{
			BaseSeed:    s.BaseSeed,
			Programs:    s.Programs,
			Configs:     s.Configs,
			Schedulers:  s.Schedulers,
			InjectSeeds: s.InjectSeeds,
		}
		for _, cl := range cells {
			rep.Runs += cl.runs
			rep.Findings = append(rep.Findings, cl.findings...)
		}
		return &JobResult{Soak: rep}, nil
	default:
		var rows []BenchRow
		for _, cl := range cells {
			rows = append(rows, cl.rows...)
		}
		return &JobResult{Bench: rows}, nil
	}
}

// Status snapshots the whole fleet for the dashboard and the status
// endpoint.
func (c *Coordinator) Status() *Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reap()
	now := c.now()
	st := &Status{LeaseTTLMillis: c.leaseTTL.Milliseconds()}
	for _, cl := range c.queue {
		if cl.state == cellPending && cl.job.failed == "" {
			st.QueueDepth++
		}
	}
	names := make([]string, 0, len(c.workers))
	for n := range c.workers {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		w := c.workers[n]
		ws := WorkerStatus{
			Name:       w.name,
			IdleMillis: now.Sub(w.lastSeen).Milliseconds(),
			Programs:   w.programs,
			Findings:   w.findings,
			Cells:      w.cells,
		}
		if alive := w.lastSeen.Sub(w.firstSeen); alive > 0 {
			ws.ProgramsPerSec = float64(w.programs) / alive.Seconds()
		}
		st.Workers = append(st.Workers, ws)
	}
	for _, id := range c.order {
		j := c.jobs[id]
		js := JobStatus{ID: j.id, Kind: j.spec.Kind, State: j.state(), Failed: j.failed}
		var dedupe sig.Deduper
		cells := append([]*cell(nil), j.cells...)
		sort.Slice(cells, func(a, b int) bool { return cells[a].start < cells[b].start })
		for _, cl := range cells {
			cursor := max(cl.cursor, cl.liveCursor)
			cs := CellStatus{
				ID: cl.id, Start: cl.start, End: cl.end, Cursor: cursor,
				State: cl.state.String(), Worker: cl.worker,
			}
			known := cl.findings
			if cl.state != cellDone {
				known = append(append([]soak.Finding(nil), cl.baseFindings...), cl.liveFindings...)
			}
			cs.Findings = len(known)
			for _, f := range known {
				dedupe.Add(f.Signature())
				if len(js.Feed) < feedLimit {
					js.Feed = append(js.Feed, f)
				}
			}
			js.Findings += len(known)
			if cl.state == cellDone {
				js.Runs += cl.runs
			} else {
				js.Runs += cl.baseRuns + cl.liveRuns
			}
			js.Programs += cl.end - cl.start
			js.Done += cursor - cl.start
			js.Cells = append(js.Cells, cs)
		}
		js.Deduped = dedupe.Classes()
		st.Jobs = append(st.Jobs, js)
	}
	return st
}

// feedLimit bounds the findings feed per job in status snapshots.
const feedLimit = 50
