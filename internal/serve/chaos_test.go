package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pok/internal/check/inject"
	"pok/internal/gen"
	"pok/internal/soak"
)

// chaosPattern drives n POSTs through a ChaosTransport against a
// counting server and returns the client-visible outcome string plus
// how many deliveries the server actually saw.
func chaosPattern(t *testing.T, ct *ChaosTransport, n int) (string, int64) {
	t.Helper()
	var delivered atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		delivered.Add(1)
		fmt.Fprint(w, `{"ok":true}`)
	}))
	defer srv.Close()
	ct.Base = nil
	client := &http.Client{Transport: ct, Timeout: 5 * time.Second}
	var b strings.Builder
	for i := 0; i < n; i++ {
		resp, err := client.Post(srv.URL, "application/json",
			bytes.NewReader([]byte(`{"i":1}`)))
		switch {
		case err != nil:
			b.WriteByte('x')
		case resp.StatusCode == http.StatusServiceUnavailable:
			resp.Body.Close()
			b.WriteByte('5')
		default:
			resp.Body.Close()
			b.WriteByte('.')
		}
	}
	return b.String(), delivered.Load()
}

// TestChaosDeterminism: the fault pattern is a pure function of the
// seed — same seed, same faults (client-visible outcomes AND
// server-side delivery count); a different seed diverges.
func TestChaosDeterminism(t *testing.T) {
	mk := func(seed uint64) *ChaosTransport {
		return &ChaosTransport{Seed: seed,
			Drop: 0.3, Dup: 0.2, Err: 0.2, Delay: 0.1, MaxDelay: time.Millisecond}
	}
	const n = 80
	p1, d1 := chaosPattern(t, mk(7), n)
	p2, d2 := chaosPattern(t, mk(7), n)
	if p1 != p2 || d1 != d2 {
		t.Fatalf("same seed diverged:\n%s (%d delivered)\n%s (%d delivered)", p1, d1, p2, d2)
	}
	p3, _ := chaosPattern(t, mk(8), n)
	if p1 == p3 {
		t.Fatalf("different seeds produced the identical %d-request pattern", n)
	}
	if !strings.Contains(p1, "x") || !strings.Contains(p1, "5") || !strings.Contains(p1, ".") {
		t.Fatalf("pattern %q did not exercise drops, 503s and successes", p1)
	}
}

func TestParseChaosSpec(t *testing.T) {
	ct, err := ParseChaosSpec("drop=0.05, dup=0.02,err=0.5,delay=1,maxdelay=80ms")
	if err != nil {
		t.Fatal(err)
	}
	if ct.Drop != 0.05 || ct.Dup != 0.02 || ct.Err != 0.5 || ct.Delay != 1 ||
		ct.MaxDelay != 80*time.Millisecond {
		t.Fatalf("parsed %+v", ct)
	}
	if ct, err := ParseChaosSpec(""); err != nil || ct != nil {
		t.Fatalf("empty spec = %+v, %v; want nil, nil", ct, err)
	}
	for _, bad := range []string{"drop", "drop=2", "drop=-0.1", "nope=0.5", "maxdelay=fast"} {
		if _, err := ParseChaosSpec(bad); err == nil {
			t.Fatalf("bad spec %q accepted", bad)
		}
	}
}

// TestClientTypedErrors: transport failures and 5xx are retried up to
// the budget and come back typed; 4xx rejections are permanent and
// never retried.
func TestClientTypedErrors(t *testing.T) {
	var flaky atomic.Int64
	var gets atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/flaky":
			if flaky.Add(1) <= 2 {
				http.Error(w, `{"error":"busy"}`, http.StatusServiceUnavailable)
				return
			}
			fmt.Fprint(w, `{"ok":true}`)
		case "/missing":
			gets.Add(1)
			http.Error(w, `{"error":"no such thing"}`, http.StatusNotFound)
		}
	}))
	defer srv.Close()

	c := NewClient(srv.URL)
	c.RetryBase = time.Millisecond
	var out map[string]bool
	if err := c.call("GET", "/flaky", nil, &out); err != nil || !out["ok"] {
		t.Fatalf("flaky call = %v, %v", out, err)
	}
	if got := c.Stats.Retries.Load(); got != 2 {
		t.Fatalf("retries = %d, want 2", got)
	}

	err := c.call("GET", "/missing", nil, nil)
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusNotFound || se.Msg != "no such thing" {
		t.Fatalf("404 error = %#v", err)
	}
	if Retryable(err) {
		t.Fatal("404 reported retryable")
	}
	if gets.Load() != 1 {
		t.Fatalf("404 was retried %d times", gets.Load()-1)
	}
	if !(&StatusError{Code: 500}).Temporary() || !(&StatusError{Code: 429}).Temporary() ||
		(&StatusError{Code: 400}).Temporary() {
		t.Fatal("StatusError.Temporary misclassifies")
	}

	srv.Close()
	err = c.call("GET", "/flaky", nil, nil)
	var te *TransportError
	if !errors.As(err, &te) {
		t.Fatalf("dead server error = %#v, want *TransportError", err)
	}
	if !Retryable(err) {
		t.Fatal("transport error reported non-retryable")
	}
}

// TestCoordinatorHammer races every coordinator RPC — lease,
// heartbeat, steal (implicit in lease), complete, release, fail,
// submit — from many goroutines against concurrent /api/status and
// dashboard renders. It asserts nothing beyond "no panic, no deadlock,
// every cell eventually terminal"; its real job is giving the race
// detector surface area.
func TestCoordinatorHammer(t *testing.T) {
	coord := NewCoordinator(30 * time.Millisecond) // real clock: expiries race too
	coord.SetRetryLimit(1 << 30)                   // strikes must not end the job mid-hammer
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	id, err := coord.Submit(JobSpec{Kind: "soak", Soak: &SoakSpec{
		BaseSeed: 41, Programs: 64, CellPrograms: 4,
		Configs: []string{"slice2"}, Schedulers: []string{"event"},
	}})
	if err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(700 * time.Millisecond)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			worker := fmt.Sprintf("w%d", g)
			n := 0
			for time.Now().Before(deadline) {
				n++
				a := coord.Lease(worker, fmt.Sprintf("%s-%d", worker, n))
				if a == nil {
					coord.Heartbeat(Heartbeat{Lease: "lease-0", Worker: worker})
					continue
				}
				cur := a.Start
				for step := 0; cur < a.End && time.Now().Before(deadline); step++ {
					cur++
					reply := coord.Heartbeat(Heartbeat{
						Lease: a.Lease, Worker: worker, Cursor: cur, Runs: cur - a.Start,
						Stats: &WorkerStats{RPCRetries: int64(n)},
					})
					if reply.Cancel {
						break
					}
					if reply.End < a.End {
						a.End = reply.End
					}
				}
				switch n % 4 {
				case 0:
					coord.Fail(a.Lease, worker, "hammer")
				case 1:
					coord.Release(ReleaseRequest{Lease: a.Lease, Worker: worker, Cursor: cur})
				default:
					_ = coord.Complete(CellResult{Lease: a.Lease, Worker: worker,
						Cursor: cur, Runs: cur - a.Start})
				}
			}
		}(g)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				resp, err := http.Get(srv.URL + "/api/status")
				if err == nil {
					var st Status
					_ = json.NewDecoder(resp.Body).Decode(&st)
					resp.Body.Close()
				}
				resp, err = http.Get(srv.URL + "/")
				if err == nil {
					resp.Body.Close()
				}
				_, _ = coord.Result(id)
			}
		}()
	}
	wg.Wait()

	// Every cell must be in a coherent terminal or resumable state.
	st := coord.Status()
	if len(st.Jobs) != 1 {
		t.Fatalf("status jobs = %d", len(st.Jobs))
	}
	for _, cs := range st.Jobs[0].Cells {
		if cs.Cursor < cs.Start || cs.Cursor > cs.End {
			t.Fatalf("cell %d cursor %d outside [%d,%d]", cs.ID, cs.Cursor, cs.Start, cs.End)
		}
	}
}

// TestChaosFleetEquivalence is the in-process version of the chaos
// smoke: a real Worker executes a whole campaign through a seeded
// fault-injecting transport (dropped requests, dropped responses,
// duplicates, 503s, delays) and the merged report must still be
// byte-identical to the single-process run. Skipped in -short.
func TestChaosFleetEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos fleet equivalence soaks real programs; skipped in -short")
	}

	hook := &inject.Options{CorruptOn: true, CorruptAt: 20}
	genOpts := gen.Options{Fragments: 6, LoopIters: 2, MaxInsts: 2000}
	solo, err := soak.Run(soak.Options{
		BaseSeed: 41, Programs: 3,
		Configs: []string{"slice2"}, Schedulers: []string{"event"},
		Hook: hook, NoReduce: true, Gen: genOpts,
		OutDir: t.TempDir(),
	}, false)
	if err != nil {
		t.Fatal(err)
	}

	coord := NewCoordinator(time.Second)
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	chaotic := NewClient(srv.URL)
	chaotic.RetryBase = 2 * time.Millisecond
	chaotic.HTTP = &http.Client{
		Timeout: 10 * time.Second,
		Transport: &ChaosTransport{Seed: 7,
			Drop: 0.15, Dup: 0.1, Err: 0.15, Delay: 0.2, MaxDelay: 5 * time.Millisecond},
	}
	clean := NewClient(srv.URL)

	id, err := clean.Submit(JobSpec{Kind: "soak", Soak: &SoakSpec{
		BaseSeed: 41, Programs: 3,
		Configs: []string{"slice2"}, Schedulers: []string{"event"},
		Hook: hook, NoReduce: true, Gen: genOpts,
		CellPrograms: 1,
	}})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	w := &Worker{Client: chaotic, Name: "stormrider",
		OutDir: t.TempDir(), Poll: 20 * time.Millisecond}
	done := make(chan error, 1)
	go func() { done <- w.Run(ctx) }()

	res, err := clean.Wait(ctx, id, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	if werr := <-done; werr != nil {
		t.Fatalf("worker exited with error: %v", werr)
	}

	soloJSON, _ := json.Marshal(solo)
	fleetJSON, _ := json.Marshal(res.Soak)
	if !bytes.Equal(soloJSON, fleetJSON) {
		t.Fatalf("chaos fleet report differs from the single-process run\nsolo:  %s\nfleet: %s",
			soloJSON, fleetJSON)
	}
	if chaotic.Stats.TransportErrors.Load()+chaotic.Stats.StatusErrors.Load() == 0 {
		t.Fatal("chaos transport injected no faults; the test tested nothing")
	}
}
