package serve

import (
	"sort"

	"pok/internal/metrics"
	"pok/internal/profile"
	"pok/internal/stats"
)

// FleetMetrics is the coordinator's aggregated observability snapshot,
// served as JSON at /api/metrics and rendered as Prometheus text at
// /metrics. Cardinality is bounded by construction: jobs × configs ×
// NumComponents CPI series, one row per worker, and a fixed-capacity
// sample ring.
type FleetMetrics struct {
	Build         *metrics.BuildInfo `json:"build,omitempty"`
	QueueDepth    int                `json:"queue_depth"`
	Draining      bool               `json:"draining,omitempty"`
	JournalError  string             `json:"journal_error,omitempty"`
	EventsDropped uint64             `json:"events_dropped,omitempty"`
	Jobs          []JobMetrics       `json:"jobs,omitempty"`
	Workers       []WorkerMetrics    `json:"workers,omitempty"`
	// Samples is the bounded time-series ring (oldest first): one entry
	// per snapshot-carrying progress event. The dashboard derives the
	// per-worker throughput sparklines and the wavefront heat-strip
	// from consecutive deltas.
	Samples []MetricsSample `json:"samples,omitempty"`
}

// JobMetrics is one job's merged telemetry: the fold of every cell's
// snapshot (committed base + live lease + final outcomes).
type JobMetrics struct {
	ID       string `json:"id"`
	Kind     string `json:"kind"`
	State    string `json:"state"`
	Programs int    `json:"programs"`
	Done     int    `json:"done"`
	// Snapshot is the job-wide merged accumulator; its per-config CPI
	// stacks keep the sum-equals-cycles invariant under merge.
	Snapshot *metrics.Snapshot `json:"snapshot,omitempty"`
	Cells    []CellMetrics     `json:"cells,omitempty"`
}

// CellMetrics is one cell's compact telemetry row (the heat-strip and
// per-cell drill-down; full stacks live on the job snapshot).
type CellMetrics struct {
	ID        int    `json:"id"`
	Start     int    `json:"start"`
	End       int    `json:"end"`
	Cursor    int    `json:"cursor"`
	State     string `json:"state"`
	Worker    string `json:"worker,omitempty"`
	Programs  int    `json:"programs"`
	Runs      int    `json:"runs"`
	Findings  int    `json:"findings"`
	Insts     uint64 `json:"insts,omitempty"`
	Cycles    int64  `json:"cycles,omitempty"`
	WallNanos int64  `json:"wall_nanos,omitempty"`
}

// WorkerMetrics is one worker's cumulative throughput and RPC health.
// LastSeenMillis mirrors WorkerStatus: a stable heartbeat timestamp
// rather than a render-time delta, so the payload — and its ETag —
// only changes when fleet state does.
type WorkerMetrics struct {
	Name            string  `json:"name"`
	LastSeenMillis  int64   `json:"last_seen_ms"`
	Cells           int     `json:"cells"`
	Programs        int     `json:"programs"`
	Findings        int     `json:"findings"`
	Insts           uint64  `json:"insts,omitempty"`
	Cycles          int64   `json:"cycles,omitempty"`
	WallNanos       int64   `json:"wall_nanos,omitempty"`
	MinstPerSec     float64 `json:"minst_per_sec,omitempty"`
	RPCRetries      int64   `json:"rpc_retries,omitempty"`
	TransportErrors int64   `json:"transport_errors,omitempty"`
	HeartbeatErrors int64   `json:"heartbeat_errors,omitempty"`
}

// MetricsSample is one entry of the coordinator's time-series ring: a
// lease's cumulative snapshot counters at one progress event. Ms is
// the coordinator's wall clock (journaled, so replay restores the ring
// byte-identically).
type MetricsSample struct {
	Ms        int64  `json:"ms"`
	Worker    string `json:"worker"`
	Job       string `json:"job"`
	Cell      int    `json:"cell"`
	Cursor    int    `json:"cursor"`
	Programs  int    `json:"programs"`
	Insts     uint64 `json:"insts"`
	Cycles    int64  `json:"cycles,omitempty"`
	WallNanos int64  `json:"wall_nanos,omitempty"`
	Findings  int    `json:"findings,omitempty"`
}

// Metrics assembles the fleet-wide observability snapshot.
func (c *Coordinator) Metrics() *FleetMetrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reap()
	m := &FleetMetrics{Draining: c.draining}
	if c.build != (metrics.BuildInfo{}) {
		b := c.build
		m.Build = &b
	}
	if c.journalErr != nil {
		m.JournalError = c.journalErr.Error()
	}
	for _, cl := range c.queue {
		if cl.state == cellPending && cl.job.failed == "" {
			m.QueueDepth++
		}
	}

	for _, id := range c.order {
		j := c.jobs[id]
		jm := JobMetrics{ID: j.id, Kind: j.spec.Kind, State: j.state()}
		var acc *metrics.Snapshot
		cells := append([]*cell(nil), j.cells...)
		sort.Slice(cells, func(a, b int) bool { return cells[a].start < cells[b].start })
		for _, cl := range cells {
			cursor := max(cl.cursor, cl.liveCursor)
			cm := CellMetrics{
				ID: cl.id, Start: cl.start, End: cl.end, Cursor: cursor,
				State: cl.state.String(), Worker: cl.worker,
			}
			if s := cellSnapLocked(cl); s != nil {
				cm.Programs, cm.Runs, cm.Findings = s.Programs, s.Runs, s.Findings
				cm.Insts, cm.Cycles, cm.WallNanos = s.Insts, s.Cycles, s.WallNanos
				if acc == nil {
					acc = &metrics.Snapshot{}
				}
				acc.Merge(s)
			}
			jm.Programs += cl.end - cl.start
			jm.Done += cursor - cl.start
			jm.Cells = append(jm.Cells, cm)
		}
		jm.Snapshot = acc
		if acc != nil {
			m.EventsDropped += acc.EventsDropped
		}
		m.Jobs = append(m.Jobs, jm)
	}

	names := make([]string, 0, len(c.workers))
	for n := range c.workers {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		w := c.workers[n]
		wm := WorkerMetrics{
			Name:           w.name,
			LastSeenMillis: w.lastSeen.UnixMilli(),
			Cells:          w.cells,
			Programs:       w.programs,
			Findings:       w.findings,
			Insts:          w.insts,
			Cycles:         w.cycles,
			WallNanos:      w.wallNanos,
		}
		if w.wallNanos > 0 {
			wm.MinstPerSec = float64(w.insts) / (float64(w.wallNanos) / 1e9) / 1e6
		}
		if w.stats != nil {
			wm.RPCRetries = w.stats.RPCRetries
			wm.TransportErrors = w.stats.TransportErrors
			wm.HeartbeatErrors = w.stats.HeartbeatErrors
		}
		m.Workers = append(m.Workers, wm)
	}

	m.Samples = append([]MetricsSample(nil), c.samples...)
	return m
}

// occupancyLes are the histogram bucket upper bounds the Prometheus
// exposition uses for the per-stage occupancy distributions.
var occupancyLes = []int{0, 1, 2, 4, 8, 16, 32, 64, 128}

// PromText renders the fleet metrics in Prometheus text-exposition
// format — the GET /metrics scrape payload, built with no external
// dependencies. Per-job CPI-stack component series sum exactly to the
// job's attributed-cycle total (profile.CPIStack keeps that invariant
// under merge); the scrape golden test asserts both the stability of
// the series names and that sum.
func (c *Coordinator) PromText() []byte {
	return renderProm(c.Metrics())
}

func renderProm(m *FleetMetrics) []byte {
	p := metrics.NewProm()
	if m.Build != nil {
		p.Gauge("pok_build_info", "Build provenance of the coordinator.",
			[][2]string{{"git_sha", m.Build.GitSHA}, {"go_version", m.Build.GoVersion}}, 1)
	}
	p.Gauge("pok_queue_depth", "Pending cells in the lease queue.", nil,
		float64(m.QueueDepth))
	p.Gauge("pok_draining", "1 while the coordinator is draining.", nil,
		boolGauge(m.Draining))
	p.Gauge("pok_journal_error", "1 if a journal append has failed.", nil,
		boolGauge(m.JournalError != ""))
	p.Gauge("pok_workers", "Workers ever seen by this coordinator.", nil,
		float64(len(m.Workers)))
	p.Counter("pok_telemetry_dropped_events_total",
		"Telemetry events dropped from bounded recorder rings, fleet-wide.",
		nil, float64(m.EventsDropped))

	for i := range m.Jobs {
		j := &m.Jobs[i]
		jl := [][2]string{{"job", j.ID}}
		p.Gauge("pok_job_programs", "Programs in the job's range.", jl, float64(j.Programs))
		p.Gauge("pok_job_programs_done", "Programs covered so far.", jl, float64(j.Done))
		s := j.Snapshot
		if s == nil {
			continue
		}
		p.Counter("pok_job_runs_total", "Detection runs executed.", jl, float64(s.Runs))
		p.Counter("pok_job_findings_total", "Findings recorded.", jl, float64(s.Findings))
		p.Counter("pok_job_replays_total", "Scheduler replays observed.", jl, float64(s.Replays))
		p.Counter("pok_job_squashes_total", "Pipeline squashes observed.", jl, float64(s.Squashes))
		cfgs := make([]string, 0, len(s.Stacks))
		for cfg := range s.Stacks {
			cfgs = append(cfgs, cfg)
		}
		sort.Strings(cfgs)
		for _, cfg := range cfgs {
			st := s.Stacks[cfg]
			cl := [][2]string{{"job", j.ID}, {"config", cfg}}
			p.Counter("pok_job_cycles_total",
				"Attributed simulated cycles per config (== sum of the CPI-stack components).",
				cl, float64(st.Cycles))
			p.Counter("pok_job_insts_total",
				"Committed instructions per config.", cl, float64(st.Insts))
			for comp := 0; comp < profile.NumComponents; comp++ {
				p.Counter("pok_job_cpistack_cycles_total",
					"CPI-stack component cycles per config; components sum to pok_job_cycles_total.",
					[][2]string{{"job", j.ID}, {"config", cfg},
						{"component", profile.Component(comp).String()}},
					float64(st.Comp[comp]))
			}
		}
		if t := s.Telemetry; t != nil {
			for _, oc := range []struct {
				stage string
				h     *stats.Histogram
			}{
				{"window", t.WindowOcc},
				{"lsq", t.LSQOcc},
				{"issue", t.IssueUse},
			} {
				p.Histogram("pok_job_occupancy",
					"Per-cycle pipeline occupancy by stage.",
					[][2]string{{"job", j.ID}, {"stage", oc.stage}}, oc.h, occupancyLes)
			}
		}
	}

	for i := range m.Workers {
		w := &m.Workers[i]
		wl := [][2]string{{"worker", w.Name}}
		p.Counter("pok_worker_programs_total", "Programs completed by worker.", wl, float64(w.Programs))
		p.Counter("pok_worker_insts_total", "Committed instructions simulated by worker.", wl, float64(w.Insts))
		p.Counter("pok_worker_cycles_total", "Simulated cycles executed by worker.", wl, float64(w.Cycles))
		p.Counter("pok_worker_wall_seconds_total", "Wall seconds spent in detection runs.", wl, float64(w.WallNanos)/1e9)
		p.Gauge("pok_worker_minst_per_sec", "Blended throughput: committed Minst per wall second.", wl, w.MinstPerSec)
		p.Counter("pok_worker_findings_total", "Findings reported by worker.", wl, float64(w.Findings))
		p.Counter("pok_worker_rpc_retries_total", "Coordinator RPC retries (worker self-reported).", wl, float64(w.RPCRetries))
		p.Counter("pok_worker_transport_errors_total", "Coordinator RPC transport errors (worker self-reported).", wl, float64(w.TransportErrors))
		p.Counter("pok_worker_heartbeat_errors_total", "Failed heartbeats (worker self-reported).", wl, float64(w.HeartbeatErrors))
	}
	return p.Render()
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
