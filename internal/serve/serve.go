// Package serve is the distributed-simulation fleet: a coordinator
// that accepts jobs (soak campaigns, bench sweeps) over HTTP/JSON,
// shards them into cells, and hands cells to worker processes through
// a pull-based work queue with leases, heartbeats and
// requeue-on-worker-death. It is the scaling layer the ROADMAP's soak
// campaigns, bench sweeps and CI gates run on.
//
// The design leans entirely on determinism already built below it:
//
//   - a soak program's seed is a pure function of (BaseSeed, index)
//     (gen.ProgramSeed), so a campaign shards into [start, end) index
//     ranges whose union covers exactly what a single process covers;
//   - the soak cursor (soak.Options.StartProgram + the per-program
//     Progress hook) is the same resumable frontier the checkpoint
//     files use, so a killed worker's cell resumes exactly where its
//     last heartbeat left it;
//   - findings dedupe by the shared failure signature (internal/sig) —
//     the identical matcher the ddmin reducer uses — so the
//     coordinator's dedupe can never disagree with a local soak's.
//
// Work stealing: an idle worker that finds the queue empty splits the
// tail off the running cell with the most remaining programs. The
// split point is chosen at least two programs past the victim's last
// reported cursor; because workers heartbeat after every program, the
// victim always learns its shrunken end before crossing it, so stolen
// ranges never overlap and never leave a gap.
//
// The coordinator keeps all state in memory and trusts its workers
// (it is a lab fleet, not a public service); jobs lost to a
// coordinator crash are simply resubmitted — every job is
// deterministic and idempotent.
//
// cmd/pok-serve is the CLI (coordinator, worker, submit and status
// modes); pok-soak and pok-bench gain -submit to run existing
// campaigns as fleet jobs unchanged.
package serve

import (
	"fmt"
	"time"

	"pok/internal/check/inject"
	"pok/internal/gen"
	"pok/internal/soak"
)

// JobSpec is a submitted job: exactly one of Soak / Bench is set,
// matching Kind.
type JobSpec struct {
	Kind  string     `json:"kind"` // "soak" | "bench"
	Soak  *SoakSpec  `json:"soak,omitempty"`
	Bench *BenchSpec `json:"bench,omitempty"`
	// SubmitKey, when non-empty, makes submission idempotent: the
	// coordinator remembers the key and a retried (or transport-
	// duplicated) submission returns the existing job instead of
	// creating a second one. Client.Submit fills one in automatically.
	SubmitKey string `json:"submit_key,omitempty"`
}

// SoakSpec is a differential soak campaign as a fleet job — the
// JSON-serializable subset of soak.Options (paths, logging and pacing
// stay per-worker). The campaign covers program indices [0, Programs)
// of BaseSeed, sharded into cells of CellPrograms.
type SoakSpec struct {
	BaseSeed    uint64          `json:"base_seed"`
	Programs    int             `json:"programs"`
	Configs     []string        `json:"configs,omitempty"`
	Schedulers  []string        `json:"schedulers,omitempty"`
	InjectSeeds int             `json:"inject_seeds,omitempty"`
	Inject      inject.Options  `json:"inject,omitempty"`
	Hook        *inject.Options `json:"hook,omitempty"`
	MaxInsts    uint64          `json:"max_insts,omitempty"`
	Watchdog    time.Duration   `json:"watchdog,omitempty"`
	Retries     int             `json:"retries,omitempty"`
	NoReduce    bool            `json:"no_reduce,omitempty"`
	// ReduceMaxTests caps candidate evaluations per reduction.
	ReduceMaxTests int `json:"reduce_max_tests,omitempty"`
	// MaxFindings, when set, stops an individual cell early after this
	// many findings. Unlike a single-process soak it applies per cell,
	// not per campaign — a campaign-wide early stop would make the
	// merged findings depend on cell scheduling order. 0 = no cap.
	MaxFindings int         `json:"max_findings,omitempty"`
	Gen         gen.Options `json:"gen,omitempty"`
	// InstCkpt arms instruction-granular checkpointing inside every
	// detection run (soak.Options.CkptInsts): workers heartbeat a
	// mid-program ResumeCursor so a reaped lease requeues at the last
	// drained snapshot instead of the last program boundary. Coverage
	// -affecting (drains perturb timing deterministically), so all
	// cells and any solo run being compared must use the same cadence.
	InstCkpt uint64 `json:"inst_ckpt,omitempty"`
	// CellPrograms is the shard size in programs (0 = Programs/8,
	// rounded up, minimum 1).
	CellPrograms int `json:"cell_programs,omitempty"`
}

// BenchSpec is a benchmark sweep as a fleet job: every benchmark ×
// config cell simulated with the workload's standard fast-forward and
// the given instruction budget. Cells shard per benchmark.
type BenchSpec struct {
	Benchmarks []string `json:"benchmarks"`
	Configs    []string `json:"configs,omitempty"`
	MaxInsts   uint64   `json:"max_insts,omitempty"`
}

// BenchRow is one (benchmark, config) result of a bench job.
type BenchRow struct {
	Benchmark string  `json:"benchmark"`
	Config    string  `json:"config"`
	IPC       float64 `json:"ipc"`
	Cycles    int64   `json:"cycles"`
	Insts     uint64  `json:"insts"`
}

// JobResult is a completed job's merged outcome. For soak jobs the
// report is byte-identical (same JSON) to the report a single-process
// run of the same campaign writes, provided no early-stop cap was hit:
// cells partition the program index space and merge in index order.
type JobResult struct {
	Soak  *soak.Report `json:"soak,omitempty"`
	Bench []BenchRow   `json:"bench,omitempty"`
}

// normalize applies the soak harness's coverage defaults so the merged
// report echoes the same Configs/Schedulers a single-process run
// records, and validates the spec.
func (s *JobSpec) normalize() error {
	switch s.Kind {
	case "soak":
		if s.Soak == nil {
			return fmt.Errorf("serve: soak job without soak spec")
		}
		return s.Soak.normalize()
	case "bench":
		if s.Bench == nil {
			return fmt.Errorf("serve: bench job without bench spec")
		}
		return s.Bench.normalize()
	default:
		return fmt.Errorf("serve: unknown job kind %q (soak, bench)", s.Kind)
	}
}

func (s *SoakSpec) normalize() error {
	if s.Programs <= 0 {
		return fmt.Errorf("serve: soak job needs programs > 0 (fleet cells are program-count sharded, not time-boxed)")
	}
	if len(s.Configs) == 0 {
		s.Configs = []string{"simple4", "slice2", "slice4"}
	}
	if len(s.Schedulers) == 0 {
		s.Schedulers = []string{"event", "legacy"}
	}
	for _, name := range s.Configs {
		if _, err := soak.ConfigByName(name); err != nil {
			return err
		}
	}
	for _, sched := range s.Schedulers {
		if sched != "event" && sched != "legacy" {
			return fmt.Errorf("serve: unknown scheduler %q (event, legacy)", sched)
		}
	}
	return nil
}

func (s *BenchSpec) normalize() error {
	if len(s.Benchmarks) == 0 {
		return fmt.Errorf("serve: bench job needs at least one benchmark")
	}
	if len(s.Configs) == 0 {
		s.Configs = []string{"simple4", "slice2", "slice4"}
	}
	for _, name := range s.Configs {
		if _, err := soak.ConfigByName(name); err != nil {
			return err
		}
	}
	return nil
}

// cellSize is the shard size in programs.
func (s *SoakSpec) cellSize() int {
	if s.CellPrograms > 0 {
		return s.CellPrograms
	}
	return max(1, (s.Programs+7)/8)
}

// Options maps the spec onto worker-side soak options for one cell;
// the caller sets StartProgram/Programs to the cell's range. A zero
// MaxFindings becomes effectively-unbounded rather than the soak
// harness's campaign default of 20: fleet cells must not early-stop
// behind the coordinator's back.
func (s *SoakSpec) Options(outDir string) soak.Options {
	maxF := s.MaxFindings
	if maxF == 0 {
		maxF = 1 << 30
	}
	return soak.Options{
		BaseSeed:       s.BaseSeed,
		Programs:       s.Programs,
		Configs:        s.Configs,
		Schedulers:     s.Schedulers,
		InjectSeeds:    s.InjectSeeds,
		Inject:         s.Inject,
		Hook:           s.Hook,
		MaxInsts:       s.MaxInsts,
		Watchdog:       s.Watchdog,
		Retries:        s.Retries,
		NoReduce:       s.NoReduce,
		ReduceMaxTests: s.ReduceMaxTests,
		MaxFindings:    maxF,
		OutDir:         outDir,
		Gen:            s.Gen,
		CkptInsts:      s.InstCkpt,
	}
}
