package serve

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"pok/internal/soak"
)

// journaled wires a fresh journal in dir into a test coordinator.
func journaled(t *testing.T, c *Coordinator, dir string) *Journal {
	t.Helper()
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AttachJournal(j); err != nil {
		t.Fatal(err)
	}
	return j
}

// dumpState renders everything the journal must reconstruct — jobs,
// cells, leases, idempotency maps, counters — in a deterministic
// order. Deliberately excluded: lease expiry times (recovered leases
// get a fresh TTL), worker bookkeeping (ephemeral, not journaled), and
// queue order (replay conservatively re-enqueues stolen cells, so the
// pending set matches but FIFO positions may not).
func dumpState(c *Coordinator) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "nextJob=%d nextLease=%d\n", c.nextJob, c.nextLease)
	for _, id := range c.order {
		j := c.jobs[id]
		fmt.Fprintf(&b, "job %s kind=%s state=%s failed=%q\n", j.id, j.spec.Kind, j.state(), j.failed)
		for _, cl := range j.cells {
			fmt.Fprintf(&b, "  cell %d %s [%d,%d) st=%s cursor=%d base=%d/%d live=%d/%d/%d "+
				"fails=%d lease=%q worker=%q nonce=%q grant=%d runs=%d findings=%d rows=%d\n",
				cl.id, cl.kind, cl.start, cl.end, cl.state, cl.cursor,
				cl.baseRuns, len(cl.baseFindings),
				cl.liveCursor, cl.liveRuns, len(cl.liveFindings),
				cl.fails, cl.lease, cl.worker, cl.nonce, cl.grantStart,
				cl.runs, len(cl.findings), len(cl.rows))
		}
	}
	var leases []string
	for id, cl := range c.leases {
		leases = append(leases, fmt.Sprintf("%s->%s/%d", id, cl.job.id, cl.id))
	}
	sort.Strings(leases)
	fmt.Fprintf(&b, "leases %v\n", leases)
	pending := map[string]bool{}
	for _, cl := range c.queue {
		if cl.state == cellPending && cl.job.failed == "" {
			pending[fmt.Sprintf("%s/%d", cl.job.id, cl.id)] = true
		}
	}
	keys := make([]string, 0, len(pending))
	for k := range pending {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintf(&b, "pending %v\n", keys)
	var sub []string
	for k, v := range c.submitted {
		sub = append(sub, k+"="+v)
	}
	sort.Strings(sub)
	var comp []string
	for k := range c.completed {
		comp = append(comp, k)
	}
	sort.Strings(comp)
	fmt.Fprintf(&b, "submitted %v completed %v\n", sub, comp)
	return b.String()
}

// TestJournalReplayEquivalence drives a scripted campaign — submit,
// leases, heartbeats, a steal, a release, a fail, a lease expiry, a
// second job — against a journaled coordinator, snapshotting state
// after every operation. Then it simulates a crash after EVERY journal
// record: each record-prefix of the log must replay without error, and
// every prefix that lands on an operation boundary must rebuild state
// identical to the live coordinator's snapshot at that moment.
func TestJournalReplayEquivalence(t *testing.T) {
	dir := t.TempDir()
	c, now := testCoordinator(time.Minute)
	j := journaled(t, c, dir)

	// Record the journal's byte length after every append so the test
	// can truncate to any record boundary. Called with both c.mu and
	// j.mu held, so it must only touch the filesystem.
	var offsets []int64
	j.afterAppend = func(int) {
		fi, err := os.Stat(j.Path())
		if err != nil {
			t.Errorf("stat journal: %v", err)
			return
		}
		offsets = append(offsets, fi.Size())
	}

	type snap struct {
		records int
		dump    string
	}
	var snaps []snap
	shot := func() { snaps = append(snaps, snap{j.Records(), dumpState(c)}) }

	id1, err := c.Submit(JobSpec{Kind: "soak", Soak: &SoakSpec{
		BaseSeed: 41, Programs: 12, CellPrograms: 8,
		Configs: []string{"slice2"}, Schedulers: []string{"event"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	shot()

	a1 := c.Lease("w1", "n1")
	if a1 == nil || a1.Start != 0 || a1.End != 8 {
		t.Fatalf("lease 1 = %+v, want [0,8)", a1)
	}
	shot()
	c.Heartbeat(Heartbeat{Lease: a1.Lease, Worker: "w1", Cursor: 2, Runs: 2,
		Findings: findings1(0)})
	shot()

	a2 := c.Lease("w2", "n2")
	if a2 == nil || a2.Start != 8 {
		t.Fatalf("lease 2 = %+v, want [8,12)", a2)
	}
	shot()
	c.Heartbeat(Heartbeat{Lease: a2.Lease, Worker: "w2", Cursor: 9, Runs: 1})
	shot()
	if err := c.Complete(CellResult{Lease: a2.Lease, Worker: "w2", Cursor: 12,
		Runs: 4, Findings: findings1(8)}); err != nil {
		t.Fatal(err)
	}
	shot()

	// Queue is empty: this lease steals [5,8) from w1's cell.
	a3 := c.Lease("w3", "n3")
	if a3 == nil || a3.Start != 5 || a3.End != 8 {
		t.Fatalf("steal lease = %+v, want [5,8)", a3)
	}
	shot()
	c.Heartbeat(Heartbeat{Lease: a3.Lease, Worker: "w3", Cursor: 6, Runs: 1,
		Findings: findings1(5)})
	shot()
	c.Release(ReleaseRequest{Lease: a3.Lease, Worker: "w3", Cursor: 6, Runs: 1,
		Findings: findings1(5)})
	shot()

	a4 := c.Lease("w4", "n4")
	if a4 == nil || a4.Start != 6 || a4.End != 8 {
		t.Fatalf("requeued lease = %+v, want [6,8)", a4)
	}
	shot()
	c.Fail(a4.Lease, "w4", "boom")
	shot()

	// Expire w1's lease (reap runs at the top of the next call).
	*now = now.Add(2 * time.Minute)
	a5 := c.Lease("w5", "n5")
	if a5 == nil {
		t.Fatal("no lease after expiry requeue")
	}
	shot()
	c.Heartbeat(Heartbeat{Lease: a5.Lease, Worker: "w5", Cursor: a5.Start + 1, Runs: 1})
	shot()
	// The expiry requeued w1's cell too; lease it so the soak job's
	// whole wavefront is in flight before the bench job arrives.
	a5b := c.Lease("w5b", "n5b")
	if a5b == nil || a5b.Kind != "soak" {
		t.Fatalf("leftover soak lease = %+v", a5b)
	}
	shot()

	id2, err := c.Submit(JobSpec{Kind: "bench", Bench: &BenchSpec{
		Benchmarks: []string{"gzip"}, Configs: []string{"slice2"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	shot()
	a6 := c.Lease("w6", "n6")
	if a6 == nil || a6.Kind != "bench" {
		t.Fatalf("bench lease = %+v", a6)
	}
	shot()
	if err := c.Complete(CellResult{Lease: a6.Lease, Worker: "w6", Cursor: a6.End,
		Rows: []BenchRow{{Benchmark: "gzip", Config: "slice2", IPC: 1}}}); err != nil {
		t.Fatal(err)
	}
	shot()
	_ = id1
	_ = id2

	blob, err := os.ReadFile(j.Path())
	if err != nil {
		t.Fatal(err)
	}
	byRecords := map[int]string{}
	for _, s := range snaps {
		byRecords[s.records] = s.dump
	}
	for i, off := range offsets {
		rdir := t.TempDir()
		if err := os.WriteFile(filepath.Join(rdir, journalFile), blob[:off], 0o644); err != nil {
			t.Fatal(err)
		}
		rj, err := OpenJournal(rdir)
		if err != nil {
			t.Fatal(err)
		}
		rc, _ := testCoordinator(time.Minute)
		stats, err := rc.AttachJournal(rj)
		if err != nil {
			t.Fatalf("replay of %d-record prefix: %v", i+1, err)
		}
		if stats.Records != i+1 {
			t.Fatalf("prefix %d replayed %d records", i+1, stats.Records)
		}
		if want, ok := byRecords[i+1]; ok {
			if got := dumpState(rc); got != want {
				t.Fatalf("state after replaying %d records differs from live snapshot:\n--- live\n%s--- replayed\n%s",
					i+1, want, got)
			}
		}
		rj.Close()
	}
}

// findings1 builds a one-element findings list.
func findings1(program int) []soak.Finding {
	return []soak.Finding{finding(program)}
}

// TestJournalRecoveryReconnect: a coordinator crash loses nothing a
// surviving worker needs — the restarted coordinator recovers the live
// lease from the journal, and the worker's next heartbeat under the
// old lease ID is accepted (no Cancel), with the campaign completing
// to the same merged result.
func TestJournalRecoveryReconnect(t *testing.T) {
	dir := t.TempDir()
	c1, _ := testCoordinator(time.Minute)
	journaled(t, c1, dir)
	id := soakJob(t, c1, 4, 4)
	a := c1.Lease("w1", "n1")
	if a == nil {
		t.Fatal("no lease")
	}
	c1.Heartbeat(Heartbeat{Lease: a.Lease, Worker: "w1", Cursor: 2, Runs: 2,
		Findings: findings1(0)})
	// Crash: c1 is simply abandoned — nothing flushed beyond what the
	// journal already holds.

	c2, _ := testCoordinator(time.Minute)
	j2, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := c2.AttachJournal(j2)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Jobs != 1 || stats.LiveLeases != 1 || stats.CleanShutdown {
		t.Fatalf("replay stats = %+v, want 1 job, 1 live lease, dirty", stats)
	}
	reply := c2.Heartbeat(Heartbeat{Lease: a.Lease, Worker: "w1", Cursor: 3, Runs: 3,
		Findings: findings1(0)})
	if reply.Cancel || reply.End != 4 {
		t.Fatalf("reconnect heartbeat = %+v, want accepted with end=4", reply)
	}
	if err := c2.Complete(CellResult{Lease: a.Lease, Worker: "w1", Cursor: 4,
		Runs: 4, Findings: findings1(0)}); err != nil {
		t.Fatal(err)
	}
	res, err := c2.Result(id)
	if err != nil {
		t.Fatal(err)
	}
	if res.Soak.Runs != 4 || len(res.Soak.Findings) != 1 {
		t.Fatalf("recovered result = %+v", res.Soak)
	}
}

// TestJournalTornTail: a partial final line — the record being written
// when the process died — is tolerated; the rest replays.
func TestJournalTornTail(t *testing.T) {
	dir := t.TempDir()
	c1, _ := testCoordinator(time.Minute)
	journaled(t, c1, dir)
	soakJob(t, c1, 4, 4)
	if a := c1.Lease("w1", "n1"); a == nil {
		t.Fatal("no lease")
	}
	path := filepath.Join(dir, journalFile)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"t":"hb","lease":"lease-1","curs`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	c2, _ := testCoordinator(time.Minute)
	j2, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := c2.AttachJournal(j2)
	if err != nil {
		t.Fatalf("torn tail not tolerated: %v", err)
	}
	if stats.Records != 2 || stats.Jobs != 1 || stats.LiveLeases != 1 {
		t.Fatalf("replay stats = %+v, want 2 records, 1 job, 1 lease", stats)
	}
}

// TestJournalCorruptMiddle: a malformed record followed by more
// records is real corruption and must fail the replay loudly.
func TestJournalCorruptMiddle(t *testing.T) {
	dir := t.TempDir()
	c1, _ := testCoordinator(time.Minute)
	journaled(t, c1, dir)
	soakJob(t, c1, 4, 4)
	path := filepath.Join(dir, journalFile)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("GARBAGE NOT JSON\n{\"t\":\"shutdown\"}\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	c2, _ := testCoordinator(time.Minute)
	j2, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.AttachJournal(j2); err == nil {
		t.Fatal("mid-log corruption replayed without error")
	}
}

// TestJournalCleanShutdown: Drain with no in-flight leases writes the
// shutdown marker; replay reports the clean shutdown. Drain with a
// live lease waits for it (completion here) and refuses new leases
// meanwhile.
func TestJournalCleanShutdown(t *testing.T) {
	dir := t.TempDir()
	c, _ := testCoordinator(time.Minute)
	journaled(t, c, dir)
	soakJob(t, c, 4, 4)
	a := c.Lease("w1", "n1")
	if a == nil {
		t.Fatal("no lease")
	}

	drained := make(chan error, 1)
	go func() { drained <- c.Drain(context.Background()) }()
	for !c.Draining() {
		time.Sleep(time.Millisecond)
	}
	if x := c.Lease("w2", "n2"); x != nil {
		t.Fatalf("draining coordinator leased a cell: %+v", x)
	}
	if _, err := c.Submit(JobSpec{Kind: "soak", Soak: &SoakSpec{Programs: 1}}); err == nil {
		t.Fatal("draining coordinator accepted a job")
	}
	if err := c.Complete(CellResult{Lease: a.Lease, Worker: "w1", Cursor: 4, Runs: 4}); err != nil {
		t.Fatal(err)
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}

	c2, _ := testCoordinator(time.Minute)
	j2, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := c2.AttachJournal(j2)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.CleanShutdown {
		t.Fatalf("replay stats = %+v, want clean shutdown", stats)
	}
}

// TestJournalDrainTimeout: Drain gives up when ctx expires with a
// lease still in flight, leaving no shutdown marker — the next replay
// recovers the lease as live.
func TestJournalDrainTimeout(t *testing.T) {
	dir := t.TempDir()
	c, _ := testCoordinator(time.Minute)
	journaled(t, c, dir)
	soakJob(t, c, 4, 4)
	if a := c.Lease("w1", "n1"); a == nil {
		t.Fatal("no lease")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := c.Drain(ctx); err == nil {
		t.Fatal("drain returned nil with a lease still live")
	}
	c2, _ := testCoordinator(time.Minute)
	j2, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := c2.AttachJournal(j2)
	if err != nil {
		t.Fatal(err)
	}
	if stats.CleanShutdown || stats.LiveLeases != 1 {
		t.Fatalf("replay stats = %+v, want dirty with 1 live lease", stats)
	}
}

// TestJournalFaultPoint: an append failure (disk full, here the
// FailAfter test hook) must not take the fleet down — the coordinator
// keeps serving from memory and surfaces the error on /api/status.
func TestJournalFaultPoint(t *testing.T) {
	dir := t.TempDir()
	c, _ := testCoordinator(time.Minute)
	j := journaled(t, c, dir)
	j.FailAfter = 1

	soakJob(t, c, 4, 4) // first record: fine
	if err := c.JournalErr(); err != nil {
		t.Fatalf("journal error after first append: %v", err)
	}
	a := c.Lease("w1", "n1") // second record: hits the fault point
	if a == nil {
		t.Fatal("lease was refused because of a journal fault")
	}
	if err := c.JournalErr(); err == nil {
		t.Fatal("journal fault not recorded")
	}
	if st := c.Status(); st.JournalError == "" {
		t.Fatal("journal fault not surfaced on status")
	}
}

// TestIdempotentRPCs: the three dedupe mechanisms retried (or
// transport-duplicated) RPCs lean on — submit keys, lease nonces, and
// the completed-lease set — each collapse duplicates into one
// application and one journal record.
func TestIdempotentRPCs(t *testing.T) {
	dir := t.TempDir()
	c, _ := testCoordinator(time.Minute)
	j := journaled(t, c, dir)

	spec := JobSpec{Kind: "soak", SubmitKey: "sub-x", Soak: &SoakSpec{
		BaseSeed: 41, Programs: 4, CellPrograms: 4,
		Configs: []string{"slice2"}, Schedulers: []string{"event"},
	}}
	id1, err := c.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := c.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if id1 != id2 {
		t.Fatalf("duplicate submit created job %s != %s", id2, id1)
	}
	if j.Records() != 1 {
		t.Fatalf("duplicate submit journaled %d records, want 1", j.Records())
	}

	a1 := c.Lease("w1", "nonce-1")
	a2 := c.Lease("w1", "nonce-1")
	if a1 == nil || a2 == nil || a1.Lease != a2.Lease {
		t.Fatalf("retried lease got a different assignment: %+v vs %+v", a1, a2)
	}
	if j.Records() != 2 {
		t.Fatalf("duplicate lease journaled %d records, want 2", j.Records())
	}
	// A different nonce from the same worker is a new logical attempt:
	// nothing is pending, so it must NOT re-grant the existing lease.
	if x := c.Lease("w1", "nonce-2"); x != nil {
		t.Fatalf("fresh nonce re-granted a held lease: %+v", x)
	}

	res := CellResult{Lease: a1.Lease, Worker: "w1", Cursor: 4, Runs: 4,
		Findings: findings1(0)}
	if err := c.Complete(res); err != nil {
		t.Fatal(err)
	}
	if err := c.Complete(res); err != nil {
		t.Fatalf("retried complete rejected: %v", err)
	}
	r, err := c.Result(id1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Soak.Runs != 4 || len(r.Soak.Findings) != 1 {
		t.Fatalf("duplicate complete double-counted: %+v", r.Soak)
	}

	// Completing past the cell end would smuggle overlapping coverage
	// into the merged report; it must be rejected, not folded in.
	soakJob(t, c, 4, 4)
	b := c.Lease("w2", "nonce-3")
	if b == nil {
		t.Fatal("no lease on the second job")
	}
	if err := c.Complete(CellResult{Lease: b.Lease, Worker: "w2", Cursor: b.End + 1}); err == nil {
		t.Fatal("completion beyond the cell end was accepted")
	}
}
