package serve

import (
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"pok/internal/ckpt"
	"pok/internal/core"
	"pok/internal/metrics"
	"pok/internal/profile"
	"pok/internal/soak"
	"pok/internal/telemetry"
	"pok/internal/workload"
)

// Worker is one fleet worker process: it pulls cells from the
// coordinator, executes them in-process through the soak harness (or
// the timing core for bench cells), heartbeats after every program —
// the heartbeat cursor is the same resumable frontier a soak
// checkpoint records, so the coordinator can resume a dead worker's
// cell exactly — and keeps long reductions alive with a background
// keepalive ticker.
//
// Coordinator outages are survived, not fatal: a failed heartbeat
// buffers the cursor and the worker keeps computing up to
// LeaseReadahead programs past its last acknowledged cursor, then
// blocks retrying until the coordinator answers. Only an outage
// longer than OutageBudget (or a permanent RPC rejection) makes the
// worker abandon its cell and exit with an error. A cancelled context
// (SIGTERM) drains gracefully: the current program finishes, the
// final cursor is heartbeat, and the lease is released cleanly.
type Worker struct {
	// Client reaches the coordinator.
	Client *Client
	// Name identifies the worker in leases and on the dashboard.
	Name string
	// OutDir receives repro bundles (default "fleet-worker-out").
	OutDir string
	// Poll is the idle-queue poll interval (default 500ms).
	Poll time.Duration
	// MaxCells exits the loop after this many completed or abandoned
	// cells (0 = run until the context ends).
	MaxCells int
	// OutageBudget is how long the coordinator may stay continuously
	// unreachable before the worker gives its cell up for lost and
	// exits nonzero (0 = 2m).
	OutageBudget time.Duration
	// NoMetrics disables telemetry collection: no metrics.Snapshot is
	// accumulated or piggybacked on heartbeats. Metrics are on by
	// default because collection never changes results — findings stay
	// byte-identical either way (the soak snapshot hook reuses the
	// recorder every checked run already attaches).
	NoMetrics bool
	// Log receives one line per cell (nil = quiet).
	Log io.Writer

	heartbeatErrs  atomic.Int64
	cellsAbandoned atomic.Int64
	cellsReleased  atomic.Int64
	soakCkptErrs   atomic.Int64 // soak.Report.CkptErrs, summed over cells
	lastContact    atomic.Int64 // unix nanos of the last successful RPC
}

// statsSnapshot assembles the worker's self-reported robustness
// counters (attached to heartbeats, surfaced on /api/status).
func (w *Worker) statsSnapshot() *WorkerStats {
	return &WorkerStats{
		RPCRetries:      w.Client.Stats.Retries.Load(),
		TransportErrors: w.Client.Stats.TransportErrors.Load(),
		StatusErrors:    w.Client.Stats.StatusErrors.Load(),
		HeartbeatErrors: w.heartbeatErrs.Load(),
		CellsAbandoned:  w.cellsAbandoned.Load(),
		CellsReleased:   w.cellsReleased.Load(),
		SoakCkptErrs:    w.soakCkptErrs.Load(),
	}
}

func (w *Worker) outageBudget() time.Duration {
	if w.OutageBudget > 0 {
		return w.OutageBudget
	}
	return 2 * time.Minute
}

func (w *Worker) touchContact() {
	w.lastContact.Store(time.Now().UnixNano())
}

func (w *Worker) outageExceeded() bool {
	return time.Since(time.Unix(0, w.lastContact.Load())) > w.outageBudget()
}

// Run pulls and executes cells until ctx is cancelled (or MaxCells is
// reached). It returns nil on a clean shutdown and an error when the
// coordinator rejected the worker permanently or stayed unreachable
// past OutageBudget.
func (w *Worker) Run(ctx context.Context) error {
	poll := w.Poll
	if poll <= 0 {
		poll = 500 * time.Millisecond
	}
	w.touchContact()
	cells := 0
	for {
		if err := ctx.Err(); err != nil {
			return nil
		}
		a, err := w.Client.Lease(w.Name)
		if err != nil {
			if !Retryable(err) {
				return fmt.Errorf("serve: worker %s: lease: %w", w.Name, err)
			}
			if w.outageExceeded() {
				return fmt.Errorf("serve: worker %s: coordinator unreachable for over %s: %w",
					w.Name, w.outageBudget(), err)
			}
			// Transient outage: idle-wait and try again.
			select {
			case <-ctx.Done():
				return nil
			case <-time.After(poll):
			}
			continue
		}
		w.touchContact()
		if a == nil {
			// Queue empty (or coordinator draining): idle-wait.
			select {
			case <-ctx.Done():
				return nil
			case <-time.After(poll):
			}
			continue
		}
		w.logf("cell %s/%d [%d,%d) leased\n", a.Job, a.Cell, a.Start, a.End)
		if err := w.runCell(ctx, a); err != nil {
			return err
		}
		cells++
		if w.MaxCells > 0 && cells >= w.MaxCells {
			return nil
		}
	}
}

func (w *Worker) runCell(ctx context.Context, a *Assignment) error {
	switch a.Kind {
	case "soak":
		return w.runSoakCell(ctx, a)
	case "bench":
		return w.runBenchCell(ctx, a)
	default:
		_ = w.Client.Fail(a.Lease, w.Name, fmt.Sprintf("unknown cell kind %q", a.Kind))
		return nil
	}
}

// cellProgress is the shared progress snapshot the per-program hook
// writes and the keepalive ticker reads.
type cellProgress struct {
	mu       sync.Mutex
	cursor   int
	runs     int
	findings []soak.Finding
	// snap is the latest metrics accumulator clone from the soak
	// snapshot hook. The clone is owned by this struct and read-only
	// from here on, so sharing the pointer across heartbeats is safe.
	snap *metrics.Snapshot
	// resume is the instruction-granular position inside the program
	// `cursor` stands on (InstCkpt jobs only); cleared at every program
	// boundary.
	resume *ResumeCursor
}

func (p *cellProgress) set(cursor, runs int, findings []soak.Finding) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.cursor = cursor
	p.runs = runs
	p.findings = append([]soak.Finding(nil), findings...)
	p.resume = nil
}

// setMid publishes a mid-program position: the campaign is inside
// program r.Program (which becomes the cursor — it is not complete),
// and r carries the drained snapshot to resume it from.
func (p *cellProgress) setMid(runs int, findings []soak.Finding, r *ResumeCursor) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.cursor = r.Program
	p.runs = runs
	p.findings = append([]soak.Finding(nil), findings...)
	p.resume = r
}

func (p *cellProgress) setSnap(snap *metrics.Snapshot) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.snap = snap
}

func (p *cellProgress) snapshot() *metrics.Snapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.snap
}

func (p *cellProgress) heartbeat(lease, worker string) Heartbeat {
	p.mu.Lock()
	defer p.mu.Unlock()
	return Heartbeat{
		Lease: lease, Worker: worker,
		Cursor: p.cursor, Runs: p.runs,
		Findings: append([]soak.Finding(nil), p.findings...),
		Snapshot: p.snap,
		Resume:   p.resume,
	}
}

func (w *Worker) runSoakCell(ctx context.Context, a *Assignment) error {
	spec := a.Spec.Soak
	if spec == nil {
		_ = w.Client.Fail(a.Lease, w.Name, "soak cell without soak spec")
		return nil
	}
	outDir := w.OutDir
	if outDir == "" {
		outDir = "fleet-worker-out"
	}
	opts := spec.Options(outDir)
	opts.StartProgram = a.Start
	opts.Programs = a.End

	prog := &cellProgress{cursor: a.Start}
	if a.Resume != nil && a.Resume.Program == a.Start {
		// A previous lease of this cell died mid-program; continue from
		// its drained snapshot. An undecodable snapshot degrades to
		// program-granularity resume rather than failing the cell.
		if s, err := ckpt.Decode(a.Resume.Snap); err == nil {
			opts.StartCell = a.Resume.Cell
			opts.StartSnap = s
			w.logf("cell %s/%d resuming p%d mid-matrix at cell %d\n",
				a.Job, a.Cell, a.Resume.Program, a.Resume.Cell)
		} else {
			w.logf("cell %s/%d resume snapshot undecodable (%v); restarting p%d\n",
				a.Job, a.Cell, err, a.Start)
		}
	}
	if !w.NoMetrics {
		// The soak hook fires right before Progress with a fresh clone,
		// so the synchronous per-program heartbeat below always carries
		// the accumulator that includes the program it reports. RPC
		// health counters are filled as per-lease deltas: like every
		// other snapshot field they then cover a disjoint span per
		// lease, so the coordinator's merge across cells stays exact.
		baseRetries := w.Client.Stats.Retries.Load()
		baseTransport := w.Client.Stats.TransportErrors.Load()
		opts.Snapshot = func(next int, snap *metrics.Snapshot) {
			snap.RPCRetries = w.Client.Stats.Retries.Load() - baseRetries
			snap.TransportErrors = w.Client.Stats.TransportErrors.Load() - baseTransport
			prog.setSnap(snap)
		}
	}
	var abandoned, released atomic.Bool
	var end, acked atomic.Int64
	end.Store(int64(a.End))
	acked.Store(int64(a.Start))
	if spec.InstCkpt > 0 {
		// Publish every drained snapshot as the heartbeat's
		// instruction-granular cursor, and turn a cancelled context or
		// a lost lease into a drain-stop at the next snapshot boundary
		// — the mid-program analogue of the Progress drain below. The
		// keepalive ticker carries the cursor upward; no synchronous
		// RPC here, snapshots are too frequent for that.
		opts.CellCursor = func(program, cell int, rep *soak.Report, s *ckpt.Snapshot) bool {
			prog.setMid(rep.Runs, rep.Findings,
				&ResumeCursor{Program: program, Cell: cell, Snap: ckpt.Encode(s)})
			return abandoned.Load() || ctx.Err() != nil
		}
	}
	var permMu sync.Mutex
	var permErr error
	setPerm := func(err error) {
		permMu.Lock()
		if permErr == nil {
			permErr = err
		}
		permMu.Unlock()
		abandoned.Store(true)
	}

	// Keepalive: a single reduction can run far longer than the lease
	// TTL, so a background ticker extends the lease between the
	// per-program heartbeats. It also doubles as the retry loop that
	// re-establishes contact while the per-program hook is computing
	// through an outage with a buffered cursor.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(keepaliveInterval(a.LeaseTTL))
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ctx.Done():
				return
			case <-t.C:
				hb := prog.heartbeat(a.Lease, w.Name)
				hb.Stats = w.statsSnapshot()
				reply, err := w.Client.Heartbeat(hb)
				if err != nil {
					w.heartbeatErrs.Add(1)
					continue
				}
				w.touchContact()
				if reply.Cancel {
					abandoned.Store(true)
				} else {
					if int64(hb.Cursor) > acked.Load() {
						acked.Store(int64(hb.Cursor))
					}
					end.Store(int64(reply.End))
				}
			}
		}
	}()

	// The per-program hook: publish the cursor, heartbeat
	// synchronously, and apply the returned end bound — this is where
	// a stolen tail takes effect, where a lost lease aborts the cell,
	// and where a coordinator outage is ridden out. A failed heartbeat
	// does not abandon the cell: the cursor stays buffered and the
	// worker keeps computing up to LeaseReadahead programs past the
	// last acknowledged cursor (the bound that keeps work stealing
	// overlap-free), then blocks retrying until the coordinator
	// answers, the outage budget runs out, or the run is cancelled.
	opts.Progress = func(next int, rep *soak.Report) (int, bool) {
		prog.set(next, rep.Runs, rep.Findings)
		for {
			if abandoned.Load() {
				return 0, true
			}
			if ctx.Err() != nil {
				// Graceful drain: this program is finished; hand the
				// lease back with the final cursor and stop.
				w.releaseCell(a, prog)
				released.Store(true)
				return 0, true
			}
			hb := prog.heartbeat(a.Lease, w.Name)
			hb.Stats = w.statsSnapshot()
			reply, err := w.Client.Heartbeat(hb)
			if err == nil {
				w.touchContact()
				if reply.Cancel {
					abandoned.Store(true)
					return 0, true
				}
				if int64(hb.Cursor) > acked.Load() {
					acked.Store(int64(hb.Cursor))
				}
				end.Store(int64(reply.End))
				return reply.End, false
			}
			w.heartbeatErrs.Add(1)
			if !Retryable(err) {
				setPerm(fmt.Errorf("serve: worker %s: heartbeat rejected: %w", w.Name, err))
				return 0, true
			}
			if w.outageExceeded() {
				setPerm(fmt.Errorf("serve: worker %s: coordinator unreachable for over %s: %w",
					w.Name, w.outageBudget(), err))
				return 0, true
			}
			if int64(next) <= acked.Load()+LeaseReadahead {
				// Within the readahead bound: keep computing against
				// the last known end; the keepalive ticker keeps
				// retrying behind us.
				return int(end.Load()), false
			}
			// Readahead exhausted: block here and retry until contact
			// is re-established.
			select {
			case <-ctx.Done():
			case <-time.After(250 * time.Millisecond):
			}
		}
	}

	rep, err := soak.Run(opts, false)
	close(stop)
	wg.Wait()
	if rep != nil && rep.CkptErrs > 0 {
		w.soakCkptErrs.Add(int64(rep.CkptErrs))
		w.logf("cell %s/%d: %d checkpoint write failures (last: %s)\n",
			a.Job, a.Cell, rep.CkptErrs, rep.LastCkptErr)
	}
	permMu.Lock()
	perm := permErr
	permMu.Unlock()
	switch {
	case err != nil:
		_ = w.Client.Fail(a.Lease, w.Name, err.Error())
		w.logf("cell %s/%d failed: %v\n", a.Job, a.Cell, err)
	case released.Load():
		w.logf("cell %s/%d released at cursor %d (drain)\n", a.Job, a.Cell, rep.Programs)
	case perm != nil:
		w.cellsAbandoned.Add(1)
		w.logf("cell %s/%d abandoned: %v\n", a.Job, a.Cell, perm)
		return perm
	case abandoned.Load():
		w.cellsAbandoned.Add(1)
		w.logf("cell %s/%d abandoned (lease lost)\n", a.Job, a.Cell)
	case rep.Stopped:
		// Drain-stopped between program boundaries (cancelled context
		// caught at a snapshot): hand the lease back with the
		// instruction-granular cursor so the next lease resumes
		// mid-program.
		w.releaseCell(a, prog)
		w.logf("cell %s/%d released mid-program at p%d (drain)\n",
			a.Job, a.Cell, prog.heartbeat("", "").Cursor)
	default:
		final := int(end.Load())
		cErr := w.Client.Complete(CellResult{
			Lease: a.Lease, Worker: w.Name,
			Cursor: final, Runs: rep.Runs, Findings: rep.Findings,
			Snapshot: prog.snapshot(),
		})
		switch {
		case cErr == nil:
			w.touchContact()
			w.logf("cell %s/%d done: %d runs, %d findings\n",
				a.Job, a.Cell, rep.Runs, len(rep.Findings))
		case Retryable(cErr):
			// The client's own retries are exhausted: the results are
			// lost with the lease, which will expire and requeue.
			w.cellsAbandoned.Add(1)
			w.logf("cell %s/%d complete unreachable, abandoning: %v\n", a.Job, a.Cell, cErr)
			if w.outageExceeded() {
				return fmt.Errorf("serve: worker %s: coordinator unreachable for over %s: %w",
					w.Name, w.outageBudget(), cErr)
			}
		default:
			w.logf("cell %s/%d complete rejected: %v\n", a.Job, a.Cell, cErr)
		}
	}
	return nil
}

// releaseCell heartbeats the final cursor and hands the lease back —
// the graceful-drain path for a SIGTERM'd worker.
func (w *Worker) releaseCell(a *Assignment, prog *cellProgress) {
	hb := prog.heartbeat(a.Lease, w.Name)
	hb.Stats = w.statsSnapshot()
	if _, err := w.Client.Heartbeat(hb); err != nil {
		w.heartbeatErrs.Add(1)
		w.logf("cell %s/%d final heartbeat failed: %v\n", a.Job, a.Cell, err)
	}
	err := w.Client.Release(ReleaseRequest{
		Lease: a.Lease, Worker: w.Name,
		Cursor: hb.Cursor, Runs: hb.Runs, Findings: hb.Findings,
		Snapshot: hb.Snapshot,
		Resume:   hb.Resume,
	})
	if err != nil {
		w.logf("cell %s/%d release failed (lease will expire): %v\n", a.Job, a.Cell, err)
		return
	}
	w.cellsReleased.Add(1)
}

func (w *Worker) runBenchCell(ctx context.Context, a *Assignment) error {
	spec := a.Spec.Bench
	if spec == nil {
		_ = w.Client.Fail(a.Lease, w.Name, "bench cell without bench spec")
		return nil
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(keepaliveInterval(a.LeaseTTL))
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ctx.Done():
				return
			case <-t.C:
				_, err := w.Client.Heartbeat(Heartbeat{
					Lease: a.Lease, Worker: w.Name, Cursor: a.Start,
					Stats: w.statsSnapshot(),
				})
				if err != nil {
					w.heartbeatErrs.Add(1)
					w.logf("cell %s/%d keepalive heartbeat failed: %v\n", a.Job, a.Cell, err)
					continue
				}
				w.touchContact()
			}
		}
	}()
	rows, snap, err := runBench(a.Benchmark, spec, !w.NoMetrics)
	close(stop)
	wg.Wait()
	if err != nil {
		_ = w.Client.Fail(a.Lease, w.Name, err.Error())
		return nil
	}
	_ = w.Client.Complete(CellResult{
		Lease: a.Lease, Worker: w.Name, Cursor: a.End, Rows: rows,
		Snapshot: snap,
	})
	w.logf("cell %s/%d done: %s, %d rows\n", a.Job, a.Cell, a.Benchmark, len(rows))
	return nil
}

// runBench simulates one benchmark under every config of the spec with
// its standard fast-forward (the same path pok.SimulateBenchmark
// takes). With collect set it attaches a telemetry recorder per run
// and folds a per-config CPI stack into the returned snapshot — the
// attached recorder is results-neutral (PR 2's bit-identical-Result
// guarantee), so BenchRows match the collector-less run exactly.
func runBench(bench string, spec *BenchSpec, collect bool) ([]BenchRow, *metrics.Snapshot, error) {
	wl, err := workload.Get(bench)
	if err != nil {
		return nil, nil, err
	}
	prog, err := wl.Program(wl.DefaultScale)
	if err != nil {
		return nil, nil, err
	}
	rows := make([]BenchRow, 0, len(spec.Configs))
	var snap *metrics.Snapshot
	if collect {
		snap = &metrics.Snapshot{}
	}
	for _, name := range spec.Configs {
		cfg, err := soak.ConfigByName(name)
		if err != nil {
			return nil, nil, err
		}
		var rec *telemetry.Recorder
		if collect {
			rec = cfg.NewRecorder(0)
			cfg.Collector = rec
		}
		t0 := time.Now()
		r, err := core.RunWarm(prog, cfg, wl.FastForward, spec.MaxInsts)
		if err != nil {
			return nil, nil, fmt.Errorf("%s/%s: %w", bench, name, err)
		}
		if rec != nil {
			sum := rec.Summary()
			var stack *profile.CPIStack
			if st, serr := profile.BuildCPIStack(rec.Events(), r.Cycles); serr == nil {
				st.Benchmark, st.Config = bench, name
				st.Lossy = sum.EventsDropped > 0
				stack = st
			}
			snap.AddRun(name, r.Insts, r.Cycles, r.Replays, stack, sum, time.Since(t0))
		}
		rows = append(rows, BenchRow{
			Benchmark: bench, Config: name,
			IPC: r.IPC, Cycles: r.Cycles, Insts: r.Insts,
		})
	}
	return rows, snap, nil
}

// keepaliveInterval paces the background lease extension at a third of
// the TTL, floored so a tiny test TTL doesn't spin.
func keepaliveInterval(ttl time.Duration) time.Duration {
	return max(ttl/3, 20*time.Millisecond)
}

func (w *Worker) logf(format string, args ...any) {
	if w.Log != nil {
		fmt.Fprintf(w.Log, "%s: "+format, append([]any{w.Name}, args...)...)
	}
}
