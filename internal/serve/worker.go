package serve

import (
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"pok/internal/core"
	"pok/internal/soak"
	"pok/internal/workload"
)

// Worker is one fleet worker process: it pulls cells from the
// coordinator, executes them in-process through the soak harness (or
// the timing core for bench cells), heartbeats after every program —
// the heartbeat cursor is the same resumable frontier a soak
// checkpoint records, so the coordinator can resume a dead worker's
// cell exactly — and keeps long reductions alive with a background
// keepalive ticker.
type Worker struct {
	// Client reaches the coordinator.
	Client *Client
	// Name identifies the worker in leases and on the dashboard.
	Name string
	// OutDir receives repro bundles (default "fleet-worker-out").
	OutDir string
	// Poll is the idle-queue poll interval (default 500ms).
	Poll time.Duration
	// MaxCells exits the loop after this many completed or abandoned
	// cells (0 = run until the context ends).
	MaxCells int
	// Log receives one line per cell (nil = quiet).
	Log io.Writer
}

// Run pulls and executes cells until ctx is cancelled (or MaxCells is
// reached). It returns nil on a clean shutdown.
func (w *Worker) Run(ctx context.Context) error {
	poll := w.Poll
	if poll <= 0 {
		poll = 500 * time.Millisecond
	}
	cells := 0
	for {
		if err := ctx.Err(); err != nil {
			return nil
		}
		a, err := w.Client.Lease(w.Name)
		if err != nil || a == nil {
			// Coordinator unreachable or queue empty: idle-wait. An
			// unreachable coordinator is indistinguishable from a slow
			// one, so the worker just keeps polling.
			select {
			case <-ctx.Done():
				return nil
			case <-time.After(poll):
			}
			continue
		}
		w.logf("cell %s/%d [%d,%d) leased\n", a.Job, a.Cell, a.Start, a.End)
		w.runCell(ctx, a)
		cells++
		if w.MaxCells > 0 && cells >= w.MaxCells {
			return nil
		}
	}
}

func (w *Worker) runCell(ctx context.Context, a *Assignment) {
	switch a.Kind {
	case "soak":
		w.runSoakCell(ctx, a)
	case "bench":
		w.runBenchCell(ctx, a)
	default:
		_ = w.Client.Fail(a.Lease, w.Name, fmt.Sprintf("unknown cell kind %q", a.Kind))
	}
}

// cellProgress is the shared progress snapshot the per-program hook
// writes and the keepalive ticker reads.
type cellProgress struct {
	mu       sync.Mutex
	cursor   int
	runs     int
	findings []soak.Finding
}

func (p *cellProgress) set(cursor, runs int, findings []soak.Finding) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.cursor = cursor
	p.runs = runs
	p.findings = append([]soak.Finding(nil), findings...)
}

func (p *cellProgress) heartbeat(lease, worker string) Heartbeat {
	p.mu.Lock()
	defer p.mu.Unlock()
	return Heartbeat{
		Lease: lease, Worker: worker,
		Cursor: p.cursor, Runs: p.runs,
		Findings: append([]soak.Finding(nil), p.findings...),
	}
}

func (w *Worker) runSoakCell(ctx context.Context, a *Assignment) {
	spec := a.Spec.Soak
	if spec == nil {
		_ = w.Client.Fail(a.Lease, w.Name, "soak cell without soak spec")
		return
	}
	outDir := w.OutDir
	if outDir == "" {
		outDir = "fleet-worker-out"
	}
	opts := spec.Options(outDir)
	opts.StartProgram = a.Start
	opts.Programs = a.End

	prog := &cellProgress{cursor: a.Start}
	var abandoned atomic.Bool
	end := int64(a.End)

	// Keepalive: a single reduction can run far longer than the lease
	// TTL, so a background ticker extends the lease between the
	// per-program heartbeats.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(keepaliveInterval(a.LeaseTTL))
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ctx.Done():
				return
			case <-t.C:
				reply, err := w.Client.Heartbeat(prog.heartbeat(a.Lease, w.Name))
				if err == nil {
					if reply.Cancel {
						abandoned.Store(true)
					} else {
						atomic.StoreInt64(&end, int64(reply.End))
					}
				}
			}
		}
	}()

	// The per-program hook: publish the cursor, heartbeat
	// synchronously, and apply the returned end bound — this is where
	// a stolen tail takes effect and where a lost lease aborts the
	// cell before any overlapping work can happen.
	opts.Progress = func(next int, rep *soak.Report) (int, bool) {
		prog.set(next, rep.Runs, rep.Findings)
		if ctx.Err() != nil || abandoned.Load() {
			abandoned.Store(true)
			return 0, true
		}
		reply, err := w.Client.Heartbeat(prog.heartbeat(a.Lease, w.Name))
		if err != nil || reply.Cancel {
			// The lease's fate is unknown (or gone): abandon the cell
			// and let the coordinator requeue it from the last acked
			// cursor rather than risk double-covering programs.
			abandoned.Store(true)
			return 0, true
		}
		atomic.StoreInt64(&end, int64(reply.End))
		return reply.End, false
	}

	rep, err := soak.Run(opts, false)
	close(stop)
	wg.Wait()
	switch {
	case err != nil:
		_ = w.Client.Fail(a.Lease, w.Name, err.Error())
		w.logf("cell %s/%d failed: %v\n", a.Job, a.Cell, err)
	case abandoned.Load():
		w.logf("cell %s/%d abandoned (lease lost)\n", a.Job, a.Cell)
	default:
		final := int(atomic.LoadInt64(&end))
		cErr := w.Client.Complete(CellResult{
			Lease: a.Lease, Worker: w.Name,
			Cursor: final, Runs: rep.Runs, Findings: rep.Findings,
		})
		if cErr != nil {
			w.logf("cell %s/%d complete rejected: %v\n", a.Job, a.Cell, cErr)
		} else {
			w.logf("cell %s/%d done: %d runs, %d findings\n",
				a.Job, a.Cell, rep.Runs, len(rep.Findings))
		}
	}
}

func (w *Worker) runBenchCell(ctx context.Context, a *Assignment) {
	spec := a.Spec.Bench
	if spec == nil {
		_ = w.Client.Fail(a.Lease, w.Name, "bench cell without bench spec")
		return
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(keepaliveInterval(a.LeaseTTL))
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ctx.Done():
				return
			case <-t.C:
				_, _ = w.Client.Heartbeat(Heartbeat{
					Lease: a.Lease, Worker: w.Name, Cursor: a.Start,
				})
			}
		}
	}()
	rows, err := runBench(a.Benchmark, spec)
	close(stop)
	wg.Wait()
	if err != nil {
		_ = w.Client.Fail(a.Lease, w.Name, err.Error())
		return
	}
	_ = w.Client.Complete(CellResult{
		Lease: a.Lease, Worker: w.Name, Cursor: a.End, Rows: rows,
	})
	w.logf("cell %s/%d done: %s, %d rows\n", a.Job, a.Cell, a.Benchmark, len(rows))
}

// runBench simulates one benchmark under every config of the spec with
// its standard fast-forward (the same path pok.SimulateBenchmark
// takes).
func runBench(bench string, spec *BenchSpec) ([]BenchRow, error) {
	wl, err := workload.Get(bench)
	if err != nil {
		return nil, err
	}
	prog, err := wl.Program(wl.DefaultScale)
	if err != nil {
		return nil, err
	}
	rows := make([]BenchRow, 0, len(spec.Configs))
	for _, name := range spec.Configs {
		cfg, err := soak.ConfigByName(name)
		if err != nil {
			return nil, err
		}
		r, err := core.RunWarm(prog, cfg, wl.FastForward, spec.MaxInsts)
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", bench, name, err)
		}
		rows = append(rows, BenchRow{
			Benchmark: bench, Config: name,
			IPC: r.IPC, Cycles: r.Cycles, Insts: r.Insts,
		})
	}
	return rows, nil
}

// keepaliveInterval paces the background lease extension at a third of
// the TTL, floored so a tiny test TTL doesn't spin.
func keepaliveInterval(ttl time.Duration) time.Duration {
	return max(ttl/3, 20*time.Millisecond)
}

func (w *Worker) logf(format string, args ...any) {
	if w.Log != nil {
		fmt.Fprintf(w.Log, "%s: "+format, append([]any{w.Name}, args...)...)
	}
}
