package serve

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// ChaosTransport is a deterministic network-fault injector: an
// http.RoundTripper that drops, delays, duplicates, or rejects
// requests according to a pure hash of (Seed, request count). The same
// seed replays the same fault pattern — the property the chaos smoke
// test leans on — with no wall-clock or math/rand state anywhere.
//
// Fault semantics, chosen to exercise each idempotency mechanism:
//
//   - drop, first half of the probability mass: the request is never
//     sent (connection refused, from the client's view). Exercises
//     plain retry.
//   - drop, second half: the request IS delivered and applied by the
//     coordinator, but the response is thrown away. Exercises true
//     idempotency — the retry re-applies submit keys, lease nonces and
//     completed-lease acknowledgement.
//   - dup: the request is sent twice back-to-back (transport-level
//     duplicate); the first response is discarded, the second
//     returned. Exercises the same dedupe paths without the client
//     even seeing an error.
//   - err: a 503 is synthesized without reaching the coordinator (a
//     dying load balancer). Exercises the typed-status retry path.
//   - delay: the request is held up to MaxDelay before sending.
//     Exercises lease-TTL slack and keepalive pacing.
//
// A zero ChaosTransport injects nothing and forwards to
// http.DefaultTransport.
type ChaosTransport struct {
	// Base is the real transport (nil = http.DefaultTransport).
	Base http.RoundTripper
	// Seed selects the fault pattern.
	Seed uint64
	// Drop, Dup, Err, Delay are per-request fault probabilities in
	// [0, 1]. They are tested independently, in that order, and the
	// first that fires wins (Delay composes with a clean send only).
	Drop  float64
	Dup   float64
	Err   float64
	Delay float64
	// MaxDelay bounds an injected delay (0 = 50ms).
	MaxDelay time.Duration

	n atomic.Uint64 // request counter; the only mutable state
}

// chaosDropErr marks a fault-injected transport failure so logs can
// tell injected faults from real ones.
type chaosDropErr struct {
	seq  uint64
	sent bool
}

func (e *chaosDropErr) Error() string {
	if e.sent {
		return fmt.Sprintf("chaos: response dropped (request %d was delivered)", e.seq)
	}
	return fmt.Sprintf("chaos: request %d dropped before send", e.seq)
}

// roll derives an independent uniform [0,1) decision stream for one
// request: lane decorrelates the per-request decisions from each
// other.
func (t *ChaosTransport) roll(seq, lane uint64) float64 {
	h := mix64(t.Seed ^ mix64(seq+lane<<32+0x517cc1b727220a95))
	return float64(h>>11) / (1 << 53)
}

// RoundTrip implements http.RoundTripper.
func (t *ChaosTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	seq := t.n.Add(1)

	if d := t.Drop; d > 0 {
		u := t.roll(seq, 1)
		switch {
		case u < d/2:
			// Never sent.
			drainRequest(req)
			return nil, &chaosDropErr{seq: seq}
		case u < d:
			// Delivered and applied; reply lost on the way back.
			resp, err := base.RoundTrip(req)
			if err != nil {
				return nil, err
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			return nil, &chaosDropErr{seq: seq, sent: true}
		}
	}
	if t.Err > 0 && t.roll(seq, 2) < t.Err {
		drainRequest(req)
		return synth503(req, seq), nil
	}
	if t.Delay > 0 && t.roll(seq, 3) < t.Delay {
		maxD := t.MaxDelay
		if maxD <= 0 {
			maxD = 50 * time.Millisecond
		}
		d := time.Duration(t.roll(seq, 4) * float64(maxD))
		select {
		case <-req.Context().Done():
			drainRequest(req)
			return nil, req.Context().Err()
		case <-time.After(d):
		}
	}
	if t.Dup > 0 && t.roll(seq, 5) < t.Dup && req.GetBody != nil {
		// Transport-level duplicate: deliver an extra copy first (its
		// reply discarded), then the original; the caller only ever
		// sees the second delivery's reply.
		extra := req.Clone(req.Context())
		if body, err := req.GetBody(); err == nil {
			extra.Body = body
			if resp, err := base.RoundTrip(extra); err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
	}
	return base.RoundTrip(req)
}

// drainRequest honours the RoundTripper contract: the request body is
// always consumed and closed, even when the request never goes out.
func drainRequest(req *http.Request) {
	if req.Body != nil {
		io.Copy(io.Discard, req.Body)
		req.Body.Close()
	}
}

func synth503(req *http.Request, seq uint64) *http.Response {
	body := fmt.Sprintf(`{"error":"chaos: synthesized 503 for request %d"}`, seq)
	return &http.Response{
		Status:        "503 Service Unavailable",
		StatusCode:    http.StatusServiceUnavailable,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        http.Header{"Content-Type": []string{"application/json"}},
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// ParseChaosSpec parses a fault spec like
//
//	"drop=0.05,dup=0.02,err=0.05,delay=0.1"
//
// into a ChaosTransport (Base left nil). Keys: drop, dup, err, delay
// (probabilities in [0,1]) and maxdelay (a Go duration, e.g. "80ms").
// An empty spec returns nil — no chaos.
func ParseChaosSpec(spec string) (*ChaosTransport, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	t := &ChaosTransport{}
	for _, kv := range strings.Split(spec, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("serve: chaos spec %q: want key=value", kv)
		}
		if k == "maxdelay" {
			d, err := time.ParseDuration(v)
			if err != nil {
				return nil, fmt.Errorf("serve: chaos spec %q: %w", kv, err)
			}
			t.MaxDelay = d
			continue
		}
		p, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return nil, fmt.Errorf("serve: chaos spec %q: %w", kv, err)
		}
		if p < 0 || p > 1 {
			return nil, fmt.Errorf("serve: chaos spec %q: probability outside [0,1]", kv)
		}
		switch k {
		case "drop":
			t.Drop = p
		case "dup":
			t.Dup = p
		case "err":
			t.Err = p
		case "delay":
			t.Delay = p
		default:
			return nil, fmt.Errorf("serve: chaos spec: unknown key %q (drop, dup, err, delay, maxdelay)", k)
		}
	}
	return t, nil
}
