package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"net/http"
	"time"

	"pok/internal/metrics"
	"pok/internal/sig"
	"pok/internal/soak"
)

// Assignment is one leased cell: everything a stateless worker needs
// to execute it — the job spec, the [Start, End) program range (soak)
// or benchmark (bench), and the lease TTL it must heartbeat within.
type Assignment struct {
	Lease     string        `json:"lease"`
	Job       string        `json:"job"`
	Cell      int           `json:"cell"`
	Kind      string        `json:"kind"`
	Start     int           `json:"start"`
	End       int           `json:"end"`
	Benchmark string        `json:"benchmark,omitempty"`
	LeaseTTL  time.Duration `json:"lease_ttl"`
	Spec      JobSpec       `json:"spec"`
	// Resume, when non-nil, is the cell's instruction-granular cursor
	// from a previous lease that was reaped or released mid-program:
	// the worker starts program Resume.Program at cell-matrix position
	// Resume.Cell from the architectural snapshot Resume.Snap instead
	// of losing the whole program's work. Only present when
	// Resume.Program == Start.
	Resume *ResumeCursor `json:"resume,omitempty"`
}

// ResumeCursor extends the program-granular cursor to instruction
// granularity (soak jobs with SoakSpec.InstCkpt set): the lease was
// inside cell-matrix position Cell of program Program, whose latest
// drained architectural snapshot is Snap (ckpt.Encode bytes; base64 in
// JSON). Heartbeats carry it up, requeued assignments carry it back
// down. The coordinator journal deliberately excludes it (snapshot
// blobs would dominate the journal), so a coordinator restart falls
// back to program-granularity resume.
type ResumeCursor struct {
	Program int    `json:"program"`
	Cell    int    `json:"cell"`
	Snap    []byte `json:"snap,omitempty"`
}

// LeaseRequest asks for work. Nonce, when non-empty, identifies this
// logical lease attempt: retrying (or a lossy transport duplicating)
// the same worker+nonce returns the original assignment instead of
// leasing a second cell that could only expire into a retry strike.
type LeaseRequest struct {
	Worker string `json:"worker"`
	Nonce  string `json:"nonce,omitempty"`
}

// Heartbeat is a worker's progress report: Cursor is the next program
// index not yet run, Findings/Runs are cumulative for this lease.
// Stats, when present, is the worker's self-reported RPC accounting,
// surfaced on /api/status.
type Heartbeat struct {
	Lease    string         `json:"lease"`
	Worker   string         `json:"worker"`
	Cursor   int            `json:"cursor"`
	Runs     int            `json:"runs"`
	Findings []soak.Finding `json:"findings,omitempty"`
	Stats    *WorkerStats   `json:"stats,omitempty"`
	// Snapshot piggybacks the lease's cumulative metrics accumulator
	// (CPI stacks, occupancy histograms, throughput) on the heartbeat —
	// the fleet telemetry transport; nil when metrics are off.
	Snapshot *metrics.Snapshot `json:"snapshot,omitempty"`
	// Resume, when non-nil, is the worker's instruction-granular
	// position inside program Cursor (soak jobs with InstCkpt): if this
	// lease is later reaped, the next lease resumes mid-program from it.
	Resume *ResumeCursor `json:"resume,omitempty"`
}

// WorkerStats is a worker's self-reported robustness accounting: how
// often its coordinator RPCs failed and retried, and how its cells
// ended. Counters are cumulative for the worker process.
type WorkerStats struct {
	RPCRetries      int64 `json:"rpc_retries,omitempty"`
	TransportErrors int64 `json:"transport_errors,omitempty"`
	StatusErrors    int64 `json:"status_errors,omitempty"`
	HeartbeatErrors int64 `json:"heartbeat_errors,omitempty"`
	CellsAbandoned  int64 `json:"cells_abandoned,omitempty"`
	CellsReleased   int64 `json:"cells_released,omitempty"`
	// SoakCkptErrs counts campaign-checkpoint/cursor writes that failed
	// inside this worker's soak runs (soak.Report.CkptErrs, summed).
	SoakCkptErrs int64 `json:"soak_ckpt_errs,omitempty"`
}

// HeartbeatReply acknowledges a heartbeat. End is the cell's current
// exclusive end bound (it shrinks when the tail is stolen); Cancel
// tells the worker its lease is gone and the cell must be abandoned.
type HeartbeatReply struct {
	End    int  `json:"end"`
	Cancel bool `json:"cancel,omitempty"`
}

// CellResult completes a lease: Findings/Runs cover exactly the
// programs this lease ran ([lease start, Cursor)), Rows carries bench
// results.
type CellResult struct {
	Lease    string         `json:"lease"`
	Worker   string         `json:"worker"`
	Cursor   int            `json:"cursor"`
	Runs     int            `json:"runs"`
	Findings []soak.Finding `json:"findings,omitempty"`
	Rows     []BenchRow     `json:"rows,omitempty"`
	// Snapshot is the lease's final metrics accumulator (nil when
	// metrics are off).
	Snapshot *metrics.Snapshot `json:"snapshot,omitempty"`
}

// ReleaseRequest hands a lease back cleanly: a draining worker ran
// through its current program, and its partial results up to Cursor
// fold into the cell before it requeues — without a retry strike.
type ReleaseRequest struct {
	Lease    string         `json:"lease"`
	Worker   string         `json:"worker"`
	Cursor   int            `json:"cursor"`
	Runs     int            `json:"runs"`
	Findings []soak.Finding `json:"findings,omitempty"`
	// Snapshot is the lease's metrics accumulator at release time (nil
	// when metrics are off); it folds into the cell's committed base.
	Snapshot *metrics.Snapshot `json:"snapshot,omitempty"`
	// Resume carries the instruction-granular position when the worker
	// drained mid-program (soak jobs with InstCkpt); the next lease of
	// this cell continues from it.
	Resume *ResumeCursor `json:"resume,omitempty"`
}

// FailRequest reports a hard worker-side error on a leased cell.
type FailRequest struct {
	Lease  string `json:"lease"`
	Worker string `json:"worker"`
	Error  string `json:"error"`
}

// Status is the fleet snapshot served at /api/status and rendered by
// the dashboard.
type Status struct {
	LeaseTTLMillis int64 `json:"lease_ttl_ms"`
	QueueDepth     int   `json:"queue_depth"`
	Draining       bool  `json:"draining,omitempty"`
	// Build is the coordinator's provenance stamp (git SHA + go
	// version), mirroring the BENCH_*.json provenance fields so
	// archived dashboard/status snapshots are attributable.
	Build        *metrics.BuildInfo `json:"build,omitempty"`
	Journal      string             `json:"journal,omitempty"`
	JournalError string             `json:"journal_error,omitempty"`
	// EventsDropped totals telemetry events that fell off bounded
	// recorder rings, fleet-wide — surfaced as a dashboard red badge.
	EventsDropped uint64         `json:"events_dropped,omitempty"`
	Workers       []WorkerStatus `json:"workers,omitempty"`
	Jobs          []JobStatus    `json:"jobs,omitempty"`
}

// WorkerStatus is one worker's fleet-side accounting.
type WorkerStatus struct {
	Name string `json:"name"`
	// LastSeenMillis is the wall-clock unix-ms of the worker's last
	// RPC. A stable timestamp (not a render-time "idle for" delta)
	// so identical fleet state serializes to identical bytes and the
	// ETag/304 revalidation path stays live; viewers derive idleness
	// client-side.
	LastSeenMillis int64        `json:"last_seen_ms"`
	Programs       int          `json:"programs"`
	ProgramsPerSec float64      `json:"programs_per_sec"`
	Findings       int          `json:"findings"`
	Cells          int          `json:"cells"`
	Stats          *WorkerStats `json:"stats,omitempty"`
}

// JobStatus is one job's live view: the cell wavefront, merged
// progress counters, the deduped finding classes and a bounded
// findings feed.
type JobStatus struct {
	ID       string         `json:"id"`
	Kind     string         `json:"kind"`
	State    string         `json:"state"`
	Failed   string         `json:"failed,omitempty"`
	Programs int            `json:"programs"`
	Done     int            `json:"done"`
	Runs     int            `json:"runs"`
	Findings int            `json:"findings"`
	Cells    []CellStatus   `json:"cells,omitempty"`
	Deduped  []sig.Class    `json:"deduped,omitempty"`
	Feed     []soak.Finding `json:"feed,omitempty"`
}

// CellStatus is one cell of the job wavefront.
type CellStatus struct {
	ID       int    `json:"id"`
	Start    int    `json:"start"`
	End      int    `json:"end"`
	Cursor   int    `json:"cursor"`
	State    string `json:"state"`
	Worker   string `json:"worker,omitempty"`
	Findings int    `json:"findings"`
}

// maxRequestBody caps every /api/* JSON request body. Heartbeats and
// completions carry findings lists, which stay far below this even on
// pathological campaigns; anything larger is a client bug or abuse.
const maxRequestBody = 32 << 20

// Handler returns the coordinator's HTTP API plus the dashboard:
//
//	POST /api/jobs            submit a JobSpec           -> {"id": ...}
//	GET  /api/jobs/{id}       job status                 -> JobStatus
//	GET  /api/jobs/{id}/result merged result (when done) -> JobResult
//	POST /api/lease           LeaseRequest               -> Assignment | 204
//	POST /api/heartbeat       Heartbeat                  -> HeartbeatReply
//	POST /api/complete        CellResult                 -> {"ok": true}
//	POST /api/release         ReleaseRequest             -> {"ok": true}
//	POST /api/fail            FailRequest                -> {"ok": true}
//	GET  /api/status          fleet snapshot             -> Status
//	GET  /api/metrics         fleet metrics (JSON)       -> FleetMetrics
//	GET  /metrics             Prometheus text exposition
//	GET  /                    self-contained HTML dashboard
//
// /api/status, /api/metrics and /metrics are served with an ETag and
// honour If-None-Match (304), so an idle fleet's dashboard refresh
// loop stops re-downloading unchanged JSON.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /api/jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec JobSpec
		if !readJSON(w, r, &spec) {
			return
		}
		id, err := c.Submit(spec)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, map[string]string{"id": id})
	})

	mux.HandleFunc("GET /api/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		st := c.Status()
		for _, j := range st.Jobs {
			if j.ID == id {
				writeJSON(w, j)
				return
			}
		}
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
	})

	mux.HandleFunc("GET /api/jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		res, err := c.Result(r.PathValue("id"))
		if err != nil {
			httpError(w, http.StatusConflict, err)
			return
		}
		writeJSON(w, res)
	})

	mux.HandleFunc("POST /api/lease", func(w http.ResponseWriter, r *http.Request) {
		var req LeaseRequest
		if !readJSON(w, r, &req) {
			return
		}
		a := c.Lease(req.Worker, req.Nonce)
		if a == nil {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		writeJSON(w, a)
	})

	mux.HandleFunc("POST /api/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		var hb Heartbeat
		if !readJSON(w, r, &hb) {
			return
		}
		writeJSON(w, c.Heartbeat(hb))
	})

	mux.HandleFunc("POST /api/complete", func(w http.ResponseWriter, r *http.Request) {
		var res CellResult
		if !readJSON(w, r, &res) {
			return
		}
		if err := c.Complete(res); err != nil {
			httpError(w, http.StatusConflict, err)
			return
		}
		writeJSON(w, map[string]bool{"ok": true})
	})

	mux.HandleFunc("POST /api/release", func(w http.ResponseWriter, r *http.Request) {
		var req ReleaseRequest
		if !readJSON(w, r, &req) {
			return
		}
		c.Release(req)
		writeJSON(w, map[string]bool{"ok": true})
	})

	mux.HandleFunc("POST /api/fail", func(w http.ResponseWriter, r *http.Request) {
		var req FailRequest
		if !readJSON(w, r, &req) {
			return
		}
		c.Fail(req.Lease, req.Worker, req.Error)
		writeJSON(w, map[string]bool{"ok": true})
	})

	mux.HandleFunc("GET /api/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSONETag(w, r, c.Status())
	})

	mux.HandleFunc("GET /api/metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSONETag(w, r, c.Metrics())
	})

	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		serveWithETag(w, r, "text/plain; version=0.0.4; charset=utf-8", c.PromText())
	})

	mux.HandleFunc("GET /{$}", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(w, dashboardHTML)
	})

	return mux
}

func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	if err := dec.Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", mbe.Limit))
			return false
		}
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeJSONETag serializes v exactly like writeJSON but stamps an ETag
// over the body and answers If-None-Match with 304 — the polling-path
// variant for snapshot endpoints.
func writeJSONETag(w http.ResponseWriter, r *http.Request, v any) {
	body, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	serveWithETag(w, r, "application/json", append(body, '\n'))
}

// serveWithETag writes body with a content-hash ETag, short-circuiting
// to 304 Not Modified when the client already holds the same bytes.
func serveWithETag(w http.ResponseWriter, r *http.Request, contentType string, body []byte) {
	h := fnv.New64a()
	_, _ = h.Write(body)
	etag := fmt.Sprintf(`"%x"`, h.Sum64())
	w.Header().Set("ETag", etag)
	if r.Header.Get("If-None-Match") == etag {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", contentType)
	_, _ = w.Write(body)
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
