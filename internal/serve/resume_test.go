package serve

import (
	"bytes"
	"testing"
	"time"
)

// instCkptJob submits a 1-cell soak job with instruction-granular
// checkpointing armed.
func instCkptJob(t *testing.T, c *Coordinator, programs int) string {
	t.Helper()
	id, err := c.Submit(JobSpec{Kind: "soak", Soak: &SoakSpec{
		BaseSeed:     41,
		Programs:     programs,
		Configs:      []string{"slice2"},
		Schedulers:   []string{"event"},
		CellPrograms: programs,
		InstCkpt:     500,
	}})
	if err != nil {
		t.Fatal(err)
	}
	return id
}

// TestResumeCursorThroughRequeue walks the instruction-granular cursor
// through the full lease lifecycle: heartbeat it up, reap the lease,
// and the next assignment must hand the identical cursor back down; a
// later program-boundary heartbeat must invalidate it; a clean release
// must commit it; completion must clear it.
func TestResumeCursorThroughRequeue(t *testing.T) {
	c, now := testCoordinator(time.Second)
	instCkptJob(t, c, 4)

	a := c.Lease("w1", "")
	if a == nil || a.Start != 0 {
		t.Fatalf("first lease: %+v", a)
	}
	if a.Resume != nil {
		t.Fatalf("fresh cell handed a resume cursor: %+v", a.Resume)
	}

	// w1 finishes program 0, then drains a snapshot inside program 1,
	// then dies (lease expires).
	c.Heartbeat(Heartbeat{Lease: a.Lease, Worker: "w1", Cursor: 1, Runs: 1})
	rc := &ResumeCursor{Program: 1, Cell: 1, Snap: []byte("snapshot-bytes")}
	c.Heartbeat(Heartbeat{Lease: a.Lease, Worker: "w1", Cursor: 1, Runs: 1, Resume: rc})
	*now = now.Add(2 * time.Second)

	a2 := c.Lease("w2", "")
	if a2 == nil || a2.Start != 1 {
		t.Fatalf("requeued lease: %+v", a2)
	}
	if a2.Resume == nil || a2.Resume.Program != 1 || a2.Resume.Cell != 1 ||
		!bytes.Equal(a2.Resume.Snap, rc.Snap) {
		t.Fatalf("requeued assignment lost the mid-program cursor: %+v", a2.Resume)
	}

	// w2 dies without a single heartbeat: the committed cursor must
	// survive a second requeue untouched.
	*now = now.Add(2 * time.Second)
	a3 := c.Lease("w3", "")
	if a3 == nil || a3.Start != 1 || a3.Resume == nil ||
		!bytes.Equal(a3.Resume.Snap, rc.Snap) {
		t.Fatalf("silent lease death dropped the cursor: %+v", a3)
	}

	// w3 passes the program boundary (heartbeat without Resume): the
	// mid-program cursor is now stale and must be invalidated.
	c.Heartbeat(Heartbeat{Lease: a3.Lease, Worker: "w3", Cursor: 2, Runs: 3})
	*now = now.Add(2 * time.Second)
	a4 := c.Lease("w4", "")
	if a4 == nil || a4.Start != 2 {
		t.Fatalf("post-boundary lease: %+v", a4)
	}
	if a4.Resume != nil {
		t.Fatalf("stale cursor survived a program-boundary heartbeat: %+v", a4.Resume)
	}

	// w4 drains cleanly mid-program: Release carries the cursor, and
	// the next lease resumes from it without a retry strike.
	rc2 := &ResumeCursor{Program: 2, Cell: 0, Snap: []byte("release-snap")}
	c.Release(ReleaseRequest{Lease: a4.Lease, Worker: "w4",
		Cursor: 2, Runs: 3, Resume: rc2})
	a5 := c.Lease("w5", "")
	if a5 == nil || a5.Start != 2 || a5.Resume == nil ||
		!bytes.Equal(a5.Resume.Snap, rc2.Snap) {
		t.Fatalf("released cursor not handed back: %+v", a5)
	}

	// Completion retires the cell; the cursor must not leak anywhere.
	if err := c.Complete(CellResult{Lease: a5.Lease, Worker: "w5",
		Cursor: 4, Runs: 7}); err != nil {
		t.Fatal(err)
	}
	cl := c.jobs[c.order[0]].cells[0]
	if cl.resume != nil || cl.liveResume != nil {
		t.Fatalf("completed cell kept a resume cursor: %+v %+v", cl.resume, cl.liveResume)
	}
}

// TestResumeCursorStaleProgramIgnored: a heartbeat whose Resume points
// at a program behind its own cursor (worker bug or reordered
// delivery) must not be committed.
func TestResumeCursorStaleProgramIgnored(t *testing.T) {
	c, now := testCoordinator(time.Second)
	instCkptJob(t, c, 4)
	a := c.Lease("w1", "")
	c.Heartbeat(Heartbeat{Lease: a.Lease, Worker: "w1", Cursor: 2, Runs: 2,
		Resume: &ResumeCursor{Program: 1, Cell: 0, Snap: []byte("old")}})
	*now = now.Add(2 * time.Second)
	a2 := c.Lease("w2", "")
	if a2 == nil || a2.Start != 2 {
		t.Fatalf("requeued lease: %+v", a2)
	}
	if a2.Resume != nil {
		t.Fatalf("stale-program cursor was handed back: %+v", a2.Resume)
	}
}

// TestSoakCkptErrsOnStatus: the worker's checkpoint-failure counter
// rides the heartbeat stats through to /api/status.
func TestSoakCkptErrsOnStatus(t *testing.T) {
	c, _ := testCoordinator(time.Second)
	instCkptJob(t, c, 4)
	a := c.Lease("w1", "")
	c.Heartbeat(Heartbeat{Lease: a.Lease, Worker: "w1", Cursor: 1, Runs: 1,
		Stats: &WorkerStats{SoakCkptErrs: 3}})
	st := c.Status()
	for _, w := range st.Workers {
		if w.Name == "w1" {
			if w.Stats == nil || w.Stats.SoakCkptErrs != 3 {
				t.Fatalf("worker stats lost SoakCkptErrs: %+v", w.Stats)
			}
			return
		}
	}
	t.Fatal("worker w1 not on status")
}
