package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"pok/internal/check/inject"
	"pok/internal/gen"
	"pok/internal/soak"
)

// testCoordinator builds a coordinator with an injectable clock so
// lease-expiry tests advance time without sleeping.
func testCoordinator(ttl time.Duration) (*Coordinator, *time.Time) {
	c := NewCoordinator(ttl)
	now := time.Unix(1_000_000, 0)
	c.now = func() time.Time { return now }
	return c, &now
}

func soakJob(t *testing.T, c *Coordinator, programs, cellPrograms int) string {
	t.Helper()
	id, err := c.Submit(JobSpec{Kind: "soak", Soak: &SoakSpec{
		BaseSeed:     41,
		Programs:     programs,
		Configs:      []string{"slice2"},
		Schedulers:   []string{"event"},
		CellPrograms: cellPrograms,
	}})
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func finding(program int) soak.Finding {
	return soak.Finding{
		Program: program, Seed: uint64(program) + 100,
		Config: "slice2", Scheduler: "event",
		Kind: "divergence", Field: "dstval", ReducedInsts: -1,
	}
}

// TestShardCells: a soak job shards into cells that exactly partition
// [0, Programs), including a short tail cell.
func TestShardCells(t *testing.T) {
	c, _ := testCoordinator(time.Second)
	id := soakJob(t, c, 10, 3)
	j := c.jobs[id]
	want := [][2]int{{0, 3}, {3, 6}, {6, 9}, {9, 10}}
	if len(j.cells) != len(want) {
		t.Fatalf("got %d cells, want %d", len(j.cells), len(want))
	}
	for i, cl := range j.cells {
		if cl.start != want[i][0] || cl.end != want[i][1] {
			t.Fatalf("cell %d is [%d,%d), want [%d,%d)",
				i, cl.start, cl.end, want[i][0], want[i][1])
		}
	}
	if j.state() != "queued" {
		t.Fatalf("fresh job state %q, want queued", j.state())
	}
}

// TestMergeOrder: cells completed out of order still merge findings in
// program-index order, matching what a single process would record.
func TestMergeOrder(t *testing.T) {
	c, _ := testCoordinator(time.Second)
	id := soakJob(t, c, 4, 1)
	var leases []*Assignment
	for i := 0; i < 4; i++ {
		a := c.Lease("w", "")
		if a == nil {
			t.Fatalf("lease %d: no work", i)
		}
		leases = append(leases, a)
	}
	if a := c.Lease("w", ""); a != nil {
		t.Fatalf("leased more cells than exist: %+v", a)
	}
	if _, err := c.Result(id); err == nil {
		t.Fatal("Result succeeded on an unfinished job")
	}
	// Complete in reverse submission order.
	for i := 3; i >= 0; i-- {
		a := leases[i]
		err := c.Complete(CellResult{
			Lease: a.Lease, Worker: "w", Cursor: a.End,
			Runs: 1, Findings: []soak.Finding{finding(a.Start)},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	res, err := c.Result(id)
	if err != nil {
		t.Fatal(err)
	}
	if res.Soak.Runs != 4 || res.Soak.Programs != 4 {
		t.Fatalf("merged runs=%d programs=%d, want 4/4", res.Soak.Runs, res.Soak.Programs)
	}
	for i, f := range res.Soak.Findings {
		if f.Program != i {
			t.Fatalf("finding %d is for program %d, want %d", i, f.Program, i)
		}
	}
	if _, err := c.Result("job-999"); err == nil {
		t.Fatal("Result succeeded on an unknown job")
	}
}

// TestLeaseExpiryRequeue: a worker that heartbeats partial progress and
// then goes silent loses its lease after the TTL; the cell requeues
// with the partial findings folded in and the next worker resumes at
// the dead worker's cursor. Stale heartbeats and completes against the
// lost lease are rejected.
func TestLeaseExpiryRequeue(t *testing.T) {
	c, now := testCoordinator(time.Second)
	id := soakJob(t, c, 4, 4)

	a := c.Lease("doomed", "")
	if a == nil || a.Start != 0 || a.End != 4 {
		t.Fatalf("lease = %+v, want [0,4)", a)
	}
	reply := c.Heartbeat(Heartbeat{
		Lease: a.Lease, Worker: "doomed", Cursor: 2, Runs: 2,
		Findings: []soak.Finding{finding(0)},
	})
	if reply.Cancel || reply.End != 4 {
		t.Fatalf("heartbeat reply = %+v, want end=4", reply)
	}

	// Expire the lease: the cell must requeue from cursor 2.
	*now = now.Add(2 * time.Second)
	a2 := c.Lease("survivor", "")
	if a2 == nil {
		t.Fatal("no requeued cell after lease expiry")
	}
	if a2.Start != 2 || a2.End != 4 {
		t.Fatalf("requeued range [%d,%d), want [2,4)", a2.Start, a2.End)
	}
	if a2.Lease == a.Lease {
		t.Fatal("requeued cell reused the expired lease id")
	}

	// The dead worker's lease is gone: heartbeat says cancel, complete
	// is rejected.
	if reply := c.Heartbeat(Heartbeat{Lease: a.Lease, Worker: "doomed", Cursor: 3}); !reply.Cancel {
		t.Fatal("heartbeat on an expired lease was not cancelled")
	}
	if err := c.Complete(CellResult{Lease: a.Lease, Worker: "doomed", Cursor: 4}); err == nil {
		t.Fatal("complete on an expired lease was accepted")
	}

	err := c.Complete(CellResult{
		Lease: a2.Lease, Worker: "survivor", Cursor: 4,
		Runs: 2, Findings: []soak.Finding{finding(2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Result(id)
	if err != nil {
		t.Fatal(err)
	}
	// Partial findings from the dead lease + the survivor's, runs summed.
	want := []soak.Finding{finding(0), finding(2)}
	if !reflect.DeepEqual(res.Soak.Findings, want) {
		t.Fatalf("merged findings %+v, want %+v", res.Soak.Findings, want)
	}
	if res.Soak.Runs != 4 {
		t.Fatalf("merged runs %d, want 4", res.Soak.Runs)
	}
}

// TestWorkSteal: an idle worker splits the tail off the running cell;
// the victim learns the shrunken end on its next heartbeat, and the two
// ranges exactly partition the original cell.
func TestWorkSteal(t *testing.T) {
	c, _ := testCoordinator(time.Minute)
	id := soakJob(t, c, 8, 8)

	a := c.Lease("victim", "")
	if a == nil || a.End != 8 {
		t.Fatalf("lease = %+v, want [0,8)", a)
	}
	c.Heartbeat(Heartbeat{Lease: a.Lease, Worker: "victim", Cursor: 2, Runs: 2})

	// Queue is empty: the second lease must steal [5,8) (mid = 2 + 6/2).
	b := c.Lease("thief", "")
	if b == nil {
		t.Fatal("no stolen cell")
	}
	if b.Start != 5 || b.End != 8 {
		t.Fatalf("stolen range [%d,%d), want [5,8)", b.Start, b.End)
	}
	// The victim's next heartbeat reports the shrunken end.
	if reply := c.Heartbeat(Heartbeat{Lease: a.Lease, Worker: "victim", Cursor: 3, Runs: 3}); reply.End != 5 {
		t.Fatalf("victim heartbeat end = %d, want 5", reply.End)
	}
	// The remaining slice [3,5) is too small to steal again.
	if x := c.Lease("greedy", ""); x != nil {
		t.Fatalf("stole a too-small remainder: %+v", x)
	}

	if err := c.Complete(CellResult{Lease: a.Lease, Worker: "victim", Cursor: 5, Runs: 5,
		Findings: []soak.Finding{finding(4)}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Complete(CellResult{Lease: b.Lease, Worker: "thief", Cursor: 8, Runs: 3,
		Findings: []soak.Finding{finding(6)}}); err != nil {
		t.Fatal(err)
	}
	res, err := c.Result(id)
	if err != nil {
		t.Fatal(err)
	}
	if res.Soak.Runs != 8 {
		t.Fatalf("merged runs %d, want 8", res.Soak.Runs)
	}
	want := []soak.Finding{finding(4), finding(6)}
	if !reflect.DeepEqual(res.Soak.Findings, want) {
		t.Fatalf("merged findings %+v, want %+v", res.Soak.Findings, want)
	}
}

// TestFailRetryLimit: a cell that keeps failing takes the whole job
// down after the retry budget, and its queue entries stop being leased.
func TestFailRetryLimit(t *testing.T) {
	c, _ := testCoordinator(time.Minute)
	id := soakJob(t, c, 2, 2)
	for i := 0; i < 4; i++ {
		a := c.Lease("w", "")
		if a == nil {
			t.Fatalf("attempt %d: no lease", i)
		}
		c.Fail(a.Lease, "w", "boom")
	}
	j := c.jobs[id]
	if j.state() != "failed" {
		t.Fatalf("job state %q after %d fails, want failed", j.state(), 4)
	}
	if a := c.Lease("w", ""); a != nil {
		t.Fatalf("leased a cell of a failed job: %+v", a)
	}
	if _, err := c.Result(id); err == nil {
		t.Fatal("Result succeeded on a failed job")
	}
}

// TestBenchJob: bench sweeps shard one cell per benchmark and merge
// rows in benchmark submission order.
func TestBenchJob(t *testing.T) {
	c, _ := testCoordinator(time.Minute)
	id, err := c.Submit(JobSpec{Kind: "bench", Bench: &BenchSpec{
		Benchmarks: []string{"gzip", "mcf"},
		Configs:    []string{"slice2"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		a := c.Lease("w", "")
		if a == nil || a.Kind != "bench" {
			t.Fatalf("lease %d = %+v, want a bench cell", i, a)
		}
		err := c.Complete(CellResult{
			Lease: a.Lease, Worker: "w", Cursor: a.End,
			Rows: []BenchRow{{Benchmark: a.Benchmark, Config: "slice2", IPC: 1.0}},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	res, err := c.Result(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bench) != 2 || res.Bench[0].Benchmark != "gzip" || res.Bench[1].Benchmark != "mcf" {
		t.Fatalf("merged rows %+v, want gzip then mcf", res.Bench)
	}
}

// TestSubmitValidation: bad specs are rejected at submission.
func TestSubmitValidation(t *testing.T) {
	c, _ := testCoordinator(time.Minute)
	bad := []JobSpec{
		{Kind: "soak"},
		{Kind: "soak", Soak: &SoakSpec{}},
		{Kind: "soak", Soak: &SoakSpec{Programs: 5, Configs: []string{"nope"}}},
		{Kind: "soak", Soak: &SoakSpec{Programs: 5, Schedulers: []string{"nope"}}},
		{Kind: "bench"},
		{Kind: "bench", Bench: &BenchSpec{}},
		{Kind: "frobnicate"},
	}
	for i, spec := range bad {
		if _, err := c.Submit(spec); err == nil {
			t.Fatalf("bad spec %d was accepted: %+v", i, spec)
		}
	}
}

// TestHTTPFleetEquivalence is the distributed analogue of the soak
// resume-equivalence test, over the real HTTP path: a fleet campaign
// whose first worker dies after one program (its partial progress known
// only through heartbeats) must still produce a findings report
// byte-identical to the single-process run of the same campaign. The
// test plays the dying worker by hand; a real Worker picks up the
// requeued remainder.
func TestHTTPFleetEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet equivalence soaks real programs; skipped in -short")
	}

	hook := &inject.Options{CorruptOn: true, CorruptAt: 20}
	genOpts := gen.Options{Fragments: 6, LoopIters: 2, MaxInsts: 2000}

	// Single-process reference: every program diverges at the seeded
	// corruption, so the findings list is non-trivial.
	solo, err := soak.Run(soak.Options{
		BaseSeed: 41, Programs: 3,
		Configs: []string{"slice2"}, Schedulers: []string{"event"},
		Hook: hook, NoReduce: true, Gen: genOpts,
		OutDir: t.TempDir(),
	}, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(solo.Findings) == 0 {
		t.Fatal("reference run found nothing; the seeded fault is broken")
	}

	coord := NewCoordinator(300 * time.Millisecond)
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()
	client := NewClient(srv.URL)

	spec := JobSpec{Kind: "soak", Soak: &SoakSpec{
		BaseSeed: 41, Programs: 3,
		Configs: []string{"slice2"}, Schedulers: []string{"event"},
		Hook: hook, NoReduce: true, Gen: genOpts,
		CellPrograms: 3, // one cell: the death must requeue, not reshard
	}}
	id, err := client.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}

	// Play the doomed worker: lease the cell, run exactly one program
	// locally (keeping the lease alive meanwhile), report the partial
	// result via heartbeat — then vanish without completing.
	a, err := client.Lease("doomed")
	if err != nil || a == nil {
		t.Fatalf("lease: %v / %+v", err, a)
	}
	if a.Start != 0 || a.End != 3 {
		t.Fatalf("lease range [%d,%d), want [0,3)", a.Start, a.End)
	}
	stop := make(chan struct{})
	tick := make(chan struct{})
	go func() {
		defer close(tick)
		tk := time.NewTicker(50 * time.Millisecond)
		defer tk.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tk.C:
				_, _ = client.Heartbeat(Heartbeat{Lease: a.Lease, Worker: "doomed"})
			}
		}
	}()
	partialOpts := spec.Soak.Options(t.TempDir())
	partialOpts.StartProgram = 0
	partialOpts.Programs = 1
	partial, err := soak.Run(partialOpts, false)
	close(stop)
	<-tick
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Heartbeat(Heartbeat{
		Lease: a.Lease, Worker: "doomed", Cursor: 1,
		Runs: partial.Runs, Findings: partial.Findings,
	}); err != nil {
		t.Fatal(err)
	}
	// Silence from here on: the lease expires and the cell requeues.

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	w := &Worker{
		Client: client, Name: "survivor",
		OutDir: t.TempDir(), Poll: 20 * time.Millisecond,
	}
	workerDone := make(chan struct{})
	go func() {
		defer close(workerDone)
		_ = w.Run(ctx)
	}()

	res, err := client.Wait(ctx, id, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	<-workerDone

	soloJSON, err := json.Marshal(solo)
	if err != nil {
		t.Fatal(err)
	}
	fleetJSON, err := json.Marshal(res.Soak)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(soloJSON, fleetJSON) {
		t.Fatalf("fleet report differs from the single-process run\nsolo:  %s\nfleet: %s",
			soloJSON, fleetJSON)
	}

	// The cell really did die and resume: the original cell must record
	// a lease expiry and a committed base at the heartbeat cursor.
	coord.mu.Lock()
	cl := coord.jobs[id].cells[0]
	fails, cursor := cl.fails, cl.cursor
	coord.mu.Unlock()
	if fails == 0 {
		t.Fatal("the doomed worker's lease never expired; the test raced")
	}
	if cursor != 3 {
		t.Fatalf("final cell cursor %d, want 3", cursor)
	}
}
