package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Client talks to a coordinator's HTTP API. It is used by workers, by
// the pok-soak / pok-bench -submit modes and by the fleet tests.
type Client struct {
	// Base is the coordinator URL, e.g. "http://127.0.0.1:8080".
	Base string
	// HTTP is the underlying client (nil = a 30s-timeout default).
	HTTP *http.Client
}

// NewClient builds a client for the coordinator at base.
func NewClient(base string) *Client {
	return &Client{Base: strings.TrimRight(base, "/")}
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{Timeout: 30 * time.Second}
}

// call POSTs (or GETs when in == nil and method == GET) JSON and
// decodes the JSON reply into out (out == nil discards it). A 204
// reply returns errNoContent.
func (c *Client) call(method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		blob, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(blob)
	}
	req, err := http.NewRequest(method, c.Base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNoContent {
		return errNoContent
	}
	if resp.StatusCode/100 != 2 {
		var e struct {
			Error string `json:"error"`
		}
		blob, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		if json.Unmarshal(blob, &e) == nil && e.Error != "" {
			return fmt.Errorf("%s %s: %s", method, path, e.Error)
		}
		return fmt.Errorf("%s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

var errNoContent = fmt.Errorf("no content")

// Submit submits a job and returns its id.
func (c *Client) Submit(spec JobSpec) (string, error) {
	var reply struct {
		ID string `json:"id"`
	}
	if err := c.call("POST", "/api/jobs", spec, &reply); err != nil {
		return "", err
	}
	return reply.ID, nil
}

// Job fetches one job's live status.
func (c *Client) Job(id string) (*JobStatus, error) {
	var js JobStatus
	if err := c.call("GET", "/api/jobs/"+id, nil, &js); err != nil {
		return nil, err
	}
	return &js, nil
}

// Result fetches a completed job's merged result (an error while the
// job is still running or after it failed).
func (c *Client) Result(id string) (*JobResult, error) {
	var res JobResult
	if err := c.call("GET", "/api/jobs/"+id+"/result", nil, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// Wait polls the job until it completes or fails, then returns the
// merged result (poll <= 0 defaults to 500ms).
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (*JobResult, error) {
	if poll <= 0 {
		poll = 500 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		js, err := c.Job(id)
		if err != nil {
			return nil, err
		}
		switch js.State {
		case "done":
			return c.Result(id)
		case "failed":
			return nil, fmt.Errorf("serve: job %s failed: %s", id, js.Failed)
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-t.C:
		}
	}
}

// Lease asks for work; a nil Assignment (no error) means none is
// available.
func (c *Client) Lease(worker string) (*Assignment, error) {
	var a Assignment
	err := c.call("POST", "/api/lease", map[string]string{"worker": worker}, &a)
	if err == errNoContent {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	return &a, nil
}

// Heartbeat reports progress on a lease.
func (c *Client) Heartbeat(hb Heartbeat) (*HeartbeatReply, error) {
	var reply HeartbeatReply
	if err := c.call("POST", "/api/heartbeat", hb, &reply); err != nil {
		return nil, err
	}
	return &reply, nil
}

// Complete finishes a lease.
func (c *Client) Complete(res CellResult) error {
	return c.call("POST", "/api/complete", res, nil)
}

// Fail reports a hard error on a lease.
func (c *Client) Fail(lease, worker, msg string) error {
	return c.call("POST", "/api/fail",
		FailRequest{Lease: lease, Worker: worker, Error: msg}, nil)
}

// Status fetches the fleet snapshot.
func (c *Client) Status() (*Status, error) {
	var st Status
	if err := c.call("GET", "/api/status", nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}
