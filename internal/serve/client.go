package serve

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// TransportError is a coordinator RPC that never produced an HTTP
// response — connection refused, reset, timeout. Always retryable:
// the request may or may not have been delivered, and every fleet RPC
// is idempotent (submit keys, lease nonces, completed-lease
// acknowledgement), so retrying cannot double-apply.
type TransportError struct {
	Op  string // "POST /api/lease", ...
	Err error
}

func (e *TransportError) Error() string { return fmt.Sprintf("%s: %v", e.Op, e.Err) }
func (e *TransportError) Unwrap() error { return e.Err }

// StatusError is a non-2xx coordinator reply.
type StatusError struct {
	Op   string
	Code int
	Msg  string // coordinator's error body, if it sent one
}

func (e *StatusError) Error() string {
	if e.Msg != "" {
		return fmt.Sprintf("%s: %s", e.Op, e.Msg)
	}
	return fmt.Sprintf("%s: HTTP %d", e.Op, e.Code)
}

// Temporary reports whether retrying could succeed: server-side
// errors and throttling are temporary, 4xx rejections are not.
func (e *StatusError) Temporary() bool {
	return e.Code >= 500 || e.Code == http.StatusTooManyRequests
}

// Retryable reports whether err is a transient coordinator failure —
// a transport error or a temporary HTTP status — as opposed to a
// permanent rejection (4xx) or a local error.
func Retryable(err error) bool {
	var te *TransportError
	if errors.As(err, &te) {
		return true
	}
	var se *StatusError
	if errors.As(err, &se) {
		return se.Temporary()
	}
	return false
}

// ClientStats counts a client's RPC outcomes (atomic; safe to read
// while the client is in use).
type ClientStats struct {
	Retries         atomic.Int64
	TransportErrors atomic.Int64
	StatusErrors    atomic.Int64
}

// Client talks to a coordinator's HTTP API. It is used by workers, by
// the pok-soak / pok-bench -submit modes and by the fleet tests.
// Transient failures (transport errors, 5xx) are retried with
// jittered exponential backoff up to the retry budget; every API is
// idempotent, so retries are always safe.
type Client struct {
	// Base is the coordinator URL, e.g. "http://127.0.0.1:8080".
	Base string
	// HTTP is the underlying client (nil = a 30s-timeout default).
	HTTP *http.Client
	// Retries is the per-call retry budget for transient failures
	// (0 = 4; negative disables retrying).
	Retries int
	// RetryBase / RetryMax bound the jittered exponential backoff
	// between attempts (0 = 50ms / 2s).
	RetryBase time.Duration
	RetryMax  time.Duration
	// Stats counts RPC outcomes across the client's lifetime.
	Stats ClientStats

	instOnce sync.Once
	instance string        // random token namespacing lease nonces
	nonce    atomic.Uint64 // lease-attempt counter
	jitter   atomic.Uint64 // deterministic backoff-jitter stream
}

// NewClient builds a client for the coordinator at base.
func NewClient(base string) *Client {
	return &Client{Base: strings.TrimRight(base, "/")}
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{Timeout: 30 * time.Second}
}

func (c *Client) retryBudget() int {
	if c.Retries < 0 {
		return 0
	}
	if c.Retries == 0 {
		return 4
	}
	return c.Retries
}

func (c *Client) backoff(attempt int) time.Duration {
	base := c.RetryBase
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	maxD := c.RetryMax
	if maxD <= 0 {
		maxD = 2 * time.Second
	}
	d := base << attempt
	if d > maxD {
		d = maxD
	}
	// Jitter the delay into [0.5d, 1.5d) from a cheap deterministic
	// stream — enough to de-synchronize a worker fleet hammering a
	// restarted coordinator, with no wall-clock seeding.
	h := mix64(c.jitter.Add(1))
	frac := float64(h>>11) / (1 << 53)
	return time.Duration(float64(d) * (0.5 + frac))
}

// call POSTs (or GETs when in == nil and method == GET) JSON and
// decodes the JSON reply into out (out == nil discards it). A 204
// reply returns errNoContent. Transient failures are retried with
// backoff up to the retry budget; the last error is returned typed
// (*TransportError or *StatusError).
func (c *Client) call(method, path string, in, out any) error {
	var blob []byte
	if in != nil {
		var err error
		blob, err = json.Marshal(in)
		if err != nil {
			return err
		}
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		err := c.do(method, path, blob, out)
		if err == nil || err == errNoContent || !Retryable(err) {
			return err
		}
		lastErr = err
		if attempt >= c.retryBudget() {
			return lastErr
		}
		c.Stats.Retries.Add(1)
		time.Sleep(c.backoff(attempt))
	}
}

// do performs one HTTP attempt.
func (c *Client) do(method, path string, blob []byte, out any) error {
	op := method + " " + path
	var body io.Reader
	if blob != nil {
		body = bytes.NewReader(blob)
	}
	req, err := http.NewRequest(method, c.Base+path, body)
	if err != nil {
		return err
	}
	if blob != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		c.Stats.TransportErrors.Add(1)
		return &TransportError{Op: op, Err: err}
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNoContent {
		return errNoContent
	}
	if resp.StatusCode/100 != 2 {
		c.Stats.StatusErrors.Add(1)
		se := &StatusError{Op: op, Code: resp.StatusCode}
		var e struct {
			Error string `json:"error"`
		}
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		if json.Unmarshal(b, &e) == nil && e.Error != "" {
			se.Msg = e.Error
		}
		return se
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		// A reply truncated mid-flight is a transport failure, not a
		// protocol error; let the caller retry it.
		return &TransportError{Op: op, Err: err}
	}
	return nil
}

var errNoContent = fmt.Errorf("no content")

// mix64 is splitmix64's finalizer: a cheap, stateless hash used for
// backoff jitter.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// randToken returns a short random hex token (nonce/submit-key
// namespacing; not part of any deterministic output).
func randToken() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("t%x", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// Submit submits a job and returns its id. A spec without a SubmitKey
// gets a random one, so retries (local or transport-level duplicates)
// land on the same job.
func (c *Client) Submit(spec JobSpec) (string, error) {
	if spec.SubmitKey == "" {
		spec.SubmitKey = "sub-" + randToken()
	}
	var reply struct {
		ID string `json:"id"`
	}
	if err := c.call("POST", "/api/jobs", spec, &reply); err != nil {
		return "", err
	}
	return reply.ID, nil
}

// Job fetches one job's live status.
func (c *Client) Job(id string) (*JobStatus, error) {
	var js JobStatus
	if err := c.call("GET", "/api/jobs/"+id, nil, &js); err != nil {
		return nil, err
	}
	return &js, nil
}

// Result fetches a completed job's merged result (an error while the
// job is still running or after it failed).
func (c *Client) Result(id string) (*JobResult, error) {
	var res JobResult
	if err := c.call("GET", "/api/jobs/"+id+"/result", nil, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// Wait polls the job until it completes or fails, then returns the
// merged result (poll <= 0 defaults to 500ms). Transient poll
// failures — a coordinator mid-restart, a flaky network — do not end
// the wait; only ctx, a permanent rejection (e.g. the job is unknown
// because the coordinator restarted without a journal) or the job's
// own completion/failure do.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (*JobResult, error) {
	if poll <= 0 {
		poll = 500 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		js, err := c.Job(id)
		switch {
		case err != nil && Retryable(err):
			// Outage: keep polling until ctx gives up.
		case err != nil:
			return nil, err
		case js.State == "done":
			return c.Result(id)
		case js.State == "failed":
			return nil, fmt.Errorf("serve: job %s failed: %s", id, js.Failed)
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-t.C:
		}
	}
}

// Lease asks for work; a nil Assignment (no error) means none is
// available. Each call is one logical lease attempt under a fresh
// nonce — its retries (and any transport duplicates) return the same
// assignment rather than leaking extra leases.
func (c *Client) Lease(worker string) (*Assignment, error) {
	c.instOnce.Do(func() { c.instance = randToken() })
	var a Assignment
	req := LeaseRequest{
		Worker: worker,
		Nonce:  fmt.Sprintf("%s-%d", c.instance, c.nonce.Add(1)),
	}
	err := c.call("POST", "/api/lease", req, &a)
	if err == errNoContent {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	return &a, nil
}

// Heartbeat reports progress on a lease.
func (c *Client) Heartbeat(hb Heartbeat) (*HeartbeatReply, error) {
	var reply HeartbeatReply
	if err := c.call("POST", "/api/heartbeat", hb, &reply); err != nil {
		return nil, err
	}
	return &reply, nil
}

// Complete finishes a lease.
func (c *Client) Complete(res CellResult) error {
	return c.call("POST", "/api/complete", res, nil)
}

// Release hands a lease back cleanly with the partial results so far
// (graceful worker shutdown).
func (c *Client) Release(rel ReleaseRequest) error {
	return c.call("POST", "/api/release", rel, nil)
}

// Fail reports a hard error on a lease.
func (c *Client) Fail(lease, worker, msg string) error {
	return c.call("POST", "/api/fail",
		FailRequest{Lease: lease, Worker: worker, Error: msg}, nil)
}

// Status fetches the fleet snapshot.
func (c *Client) Status() (*Status, error) {
	var st Status
	if err := c.call("GET", "/api/status", nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Metrics fetches the aggregated fleet observability snapshot.
func (c *Client) Metrics() (*FleetMetrics, error) {
	var m FleetMetrics
	if err := c.call("GET", "/api/metrics", nil, &m); err != nil {
		return nil, err
	}
	return &m, nil
}
