package stats

import (
	"strings"
	"testing"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(8)
	for _, v := range []int{0, 1, 1, 2, 7, 12, -3} {
		h.Add(v)
	}
	if h.Total != 7 {
		t.Fatalf("Total = %d", h.Total)
	}
	// 12 clamps into the last bin but keeps its magnitude in Sum/Max.
	if h.Bins[7] != 2 {
		t.Fatalf("last bin = %d, want 2", h.Bins[7])
	}
	if h.Max != 12 {
		t.Fatalf("Max = %d", h.Max)
	}
	if want := float64(0+1+1+2+7+12+0) / 7; h.Mean() != want {
		t.Fatalf("Mean = %v, want %v", h.Mean(), want)
	}
	if h.Bins[0] != 2 { // 0 and clamped -3
		t.Fatalf("bin 0 = %d, want 2", h.Bins[0])
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(16)
	for i := 0; i < 100; i++ {
		h.Add(i % 10)
	}
	if q := h.Quantile(0.5); q != 5 {
		t.Fatalf("p50 = %d, want 5", q)
	}
	if q := h.Quantile(0.95); q != 9 {
		t.Fatalf("p95 = %d, want 9", q)
	}
	if q := NewHistogram(4).Quantile(0.5); q != 0 {
		t.Fatalf("empty p50 = %d", q)
	}
}

func TestHistogramRender(t *testing.T) {
	h := NewHistogram(64)
	for i := 0; i < 32; i++ {
		h.Add(i)
	}
	out := h.Render("window")
	if !strings.Contains(out, "window") || !strings.Contains(out, "mean=") {
		t.Fatalf("render:\n%s", out)
	}
	if !strings.Contains(out, "#") {
		t.Fatalf("render has no bars:\n%s", out)
	}
}
