package stats

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Title", "bench", "ipc")
	tb.AddRow("bzip", "1.23")
	tb.AddRow("verylongname", "0.5")
	out := tb.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Title") {
		t.Fatal("missing title")
	}
	// Columns align: every data line has the separator width.
	if len(lines[3]) < len("verylongname") {
		t.Fatal("column not widened")
	}
}

func TestTableShortRowsPadded(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.AddRow("only")
	if got := len(tb.Rows[0]); got != 3 {
		t.Fatalf("row len %d", got)
	}
}

func TestCSV(t *testing.T) {
	tb := NewTable("x", "a", "b")
	tb.AddRow("1", "2")
	want := "a,b\n1,2\n"
	if got := tb.CSV(); got != want {
		t.Fatalf("CSV = %q", got)
	}
}

func TestPctAndF2(t *testing.T) {
	if Pct(1, 4) != "25.0%" || Pct(0, 0) != "0.0%" {
		t.Fatal("Pct wrong")
	}
	if F2(1.234) != "1.23" {
		t.Fatal("F2 wrong")
	}
}

func TestDist(t *testing.T) {
	d := NewDist(4)
	d.Add(0)
	d.Add(1)
	d.Add(1)
	d.Add(3)
	d.Add(99) // clamps to last bin
	d.Add(-5) // clamps to first bin
	if d.Total != 6 {
		t.Fatalf("total %d", d.Total)
	}
	if d.Frac(1) != 2.0/6 {
		t.Fatalf("Frac(1) = %f", d.Frac(1))
	}
	if d.CumFrac(1) != 4.0/6 {
		t.Fatalf("CumFrac(1) = %f", d.CumFrac(1))
	}
	if d.CumFrac(100) != 1 {
		t.Fatal("CumFrac clamp")
	}
	var empty Dist
	if empty.CumFrac(0) != 0 || empty.Frac(0) != 0 {
		t.Fatal("empty dist")
	}
}
