// Package stats provides the counters, distributions and fixed-width
// table rendering used by the experiment harnesses to print paper-style
// tables and figure series.
package stats

import (
	"fmt"
	"strings"
)

// Table is a simple fixed-width text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// Render formats the table with aligned columns.
func (t *Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (headers first).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Headers, ","))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		b.WriteString(strings.Join(r, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// Pct formats a fraction as a percentage with one decimal.
func Pct(num, den uint64) string {
	if den == 0 {
		return "0.0%"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(num)/float64(den))
}

// F2 formats a float with two decimals.
func F2(v float64) string { return fmt.Sprintf("%.2f", v) }

// Dist is a cumulative distribution over integer bins (e.g. "percentage of
// events resolved by bit k"), the shape the paper's Figures 2/4/6 plot.
type Dist struct {
	Counts []uint64
	Total  uint64
}

// NewDist creates a distribution with bins [0, n).
func NewDist(n int) *Dist { return &Dist{Counts: make([]uint64, n)} }

// Add records an event in bin i (clamped to the valid range).
func (d *Dist) Add(i int) {
	if i < 0 {
		i = 0
	}
	if i >= len(d.Counts) {
		i = len(d.Counts) - 1
	}
	d.Counts[i]++
	d.Total++
}

// CumFrac returns the fraction of events in bins [0, i].
func (d *Dist) CumFrac(i int) float64 {
	if d.Total == 0 {
		return 0
	}
	if i >= len(d.Counts) {
		i = len(d.Counts) - 1
	}
	var c uint64
	for k := 0; k <= i; k++ {
		c += d.Counts[k]
	}
	return float64(c) / float64(d.Total)
}

// Frac returns the fraction of events in bin i.
func (d *Dist) Frac(i int) float64 {
	if d.Total == 0 || i < 0 || i >= len(d.Counts) {
		return 0
	}
	return float64(d.Counts[i]) / float64(d.Total)
}
