package stats

import (
	"fmt"
	"strings"
)

// Histogram is a fixed-bin occupancy histogram: bin i counts samples
// with value i, the last bin absorbing everything at or beyond the
// range (so a WindowSize-sized histogram never reallocates). It backs
// the telemetry layer's per-stage occupancy and stall-cause
// distributions; Add is allocation-free.
type Histogram struct {
	Bins  []uint64 `json:"bins"`
	Total uint64   `json:"total"`
	Sum   uint64   `json:"sum"`
	Max   int      `json:"max"`
}

// NewHistogram creates a histogram over values [0, n); values >= n are
// clamped into the final bin (their true magnitude still feeds Sum/Max).
func NewHistogram(n int) *Histogram {
	if n < 1 {
		n = 1
	}
	return &Histogram{Bins: make([]uint64, n)}
}

// Add records one sample. Negative samples clamp to zero.
func (h *Histogram) Add(v int) {
	if v < 0 {
		v = 0
	}
	i := v
	if i >= len(h.Bins) {
		i = len(h.Bins) - 1
	}
	h.Bins[i]++
	h.Total++
	h.Sum += uint64(v)
	if v > h.Max {
		h.Max = v
	}
}

// Merge folds o into h bin-by-bin. Bins grow to the longer of the two
// shapes (no re-clamping: a sample that landed in o's last bin stays at
// that index), so Merge is associative and commutative — the property
// the fleet metrics pipeline relies on when cell snapshots arrive in
// arbitrary order. A nil o is a no-op.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil {
		return
	}
	if len(o.Bins) > len(h.Bins) {
		grown := make([]uint64, len(o.Bins))
		copy(grown, h.Bins)
		h.Bins = grown
	}
	for i, n := range o.Bins {
		h.Bins[i] += n
	}
	h.Total += o.Total
	h.Sum += o.Sum
	if o.Max > h.Max {
		h.Max = o.Max
	}
}

// Clone returns an independent deep copy (nil in, nil out).
func (h *Histogram) Clone() *Histogram {
	if h == nil {
		return nil
	}
	c := *h
	c.Bins = append([]uint64(nil), h.Bins...)
	return &c
}

// Mean returns the average sample value (0 with no samples).
func (h *Histogram) Mean() float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Total)
}

// Quantile returns the smallest bin b such that at least q (0..1) of
// the samples fall in bins [0, b].
func (h *Histogram) Quantile(q float64) int {
	if h.Total == 0 {
		return 0
	}
	target := uint64(q * float64(h.Total))
	var c uint64
	for i, n := range h.Bins {
		c += n
		if c > target || c == h.Total {
			return i
		}
	}
	return len(h.Bins) - 1
}

// Render formats the histogram as a compact one-line summary plus a
// bar sketch of the occupied range, for the human-readable reports.
func (h *Histogram) Render(label string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s mean=%.2f p50=%d p95=%d max=%d n=%d\n",
		label, h.Mean(), h.Quantile(0.50), h.Quantile(0.95), h.Max, h.Total)
	if h.Total == 0 {
		return b.String()
	}
	// Sketch at most 16 buckets spanning the occupied bins.
	hi := 0
	for i, n := range h.Bins {
		if n > 0 {
			hi = i
		}
	}
	step := (hi + 16) / 16
	if step < 1 {
		step = 1
	}
	var peak uint64
	counts := make([]uint64, 0, 16)
	for lo := 0; lo <= hi; lo += step {
		var c uint64
		for i := lo; i < lo+step && i < len(h.Bins); i++ {
			c += h.Bins[i]
		}
		counts = append(counts, c)
		if c > peak {
			peak = c
		}
	}
	for bi, c := range counts {
		bar := 0
		if peak > 0 {
			bar = int(40 * c / peak)
		}
		fmt.Fprintf(&b, "  %4d..%-4d %8d %s\n",
			bi*step, bi*step+step-1, c, strings.Repeat("#", bar))
	}
	return b.String()
}
