package pok

import (
	"strings"
	"testing"
)

func TestAssembleExecute(t *testing.T) {
	prog, err := Assemble(`
.data
msg: .asciiz "partial operands\n"
.text
main:
	li $v0, 4
	la $a0, msg
	syscall
	li $v0, 10
	syscall
`)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Execute(prog, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out != "partial operands\n" {
		t.Fatalf("output = %q", out)
	}
}

func TestRunConfigs(t *testing.T) {
	for _, cfg := range []Config{BaseConfig(), SimplePipelined(2), BitSliced(2),
		SimplePipelined(4), BitSliced(4)} {
		r, err := Run(loopProg(t), cfg, 0)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if r.Insts == 0 || r.IPC <= 0 {
			t.Fatalf("%s: empty result", cfg.Name)
		}
	}
}

func loopProg(t *testing.T) *Program {
	t.Helper()
	prog, err := Assemble(`
main:
	li $t0, 400
	li $t1, 0
loop:
	addu $t1, $t1, $t0
	addiu $t0, $t0, -1
	bne $t0, $zero, loop
	li $v0, 10
	syscall
`)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestSimulateBenchmark(t *testing.T) {
	r, err := SimulateBenchmark("li", BitSliced(2), 20_000)
	if err != nil {
		t.Fatal(err)
	}
	if r.Benchmark != "li" || r.Insts != 20_000 {
		t.Fatalf("result %+v", r)
	}
	if _, err := SimulateBenchmark("nope", BaseConfig(), 10); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestBenchmarkListAndWorkloads(t *testing.T) {
	names := Benchmarks()
	if len(names) != 11 || names[0] != "bzip" {
		t.Fatalf("benchmarks = %v", names)
	}
	w, err := GetWorkload("gzip")
	if err != nil || w.Name != "gzip" {
		t.Fatal(err)
	}
}

func TestExperimentFacade(t *testing.T) {
	opt := Options{Benchmarks: []string{"li"}, MaxInsts: 15_000}
	rows, err := Table1(opt)
	if err != nil || len(rows) != 1 {
		t.Fatalf("table1: %v %v", rows, err)
	}
	if !strings.Contains(RenderTable1(rows), "li") {
		t.Fatal("render")
	}
	f11, err := Figure11(opt, 2)
	if err != nil || len(f11) != 1 {
		t.Fatalf("figure11: %v", err)
	}
	f12 := Figure12(f11)
	if len(f12) != 1 {
		t.Fatal("figure12")
	}
	if !strings.Contains(RenderFigure12(f12), "Figure 12") {
		t.Fatal("render 12")
	}
}

func TestConfigLadderFacade(t *testing.T) {
	if got := len(ConfigLadder(2)); got != 6 {
		t.Fatalf("ladder size %d", got)
	}
}

func TestCompileC(t *testing.T) {
	prog, err := CompileC(`
int main() {
	int i;
	int s = 0;
	for (i = 0; i < 10; i++) s += i * i;
	print(s);
	return 0;
}`)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Execute(prog, 0)
	if err != nil || out != "285\n" {
		t.Fatalf("out=%q err=%v", out, err)
	}
	r, err := Run(prog2(t), BitSliced(2), 0)
	if err != nil || r.Insts == 0 {
		t.Fatalf("timing compiled code: %v", err)
	}
	if _, err := CompileC("int main() { return x; }"); err == nil {
		t.Fatal("bad program compiled")
	}
}

func prog2(t *testing.T) *Program {
	t.Helper()
	p, err := CompileC(`int main() { int i; int s = 0; for (i = 0; i < 50; i++) s += i; print(s); return 0; }`)
	if err != nil {
		t.Fatal(err)
	}
	return p
}
