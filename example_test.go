package pok_test

import (
	"fmt"

	"pok"
)

// ExampleExecute assembles and functionally executes a program.
func ExampleExecute() {
	prog, err := pok.Assemble(`
main:
	li $v0, 1
	li $a0, 6
	syscall          # print_int(6)
	li $v0, 10
	syscall          # exit
`)
	if err != nil {
		panic(err)
	}
	out, err := pok.Execute(prog, 0)
	if err != nil {
		panic(err)
	}
	fmt.Println(out)
	// Output: 6
}

// ExampleCompileC compiles MiniC and runs the result.
func ExampleCompileC() {
	prog, err := pok.CompileC(`
int square(int x) { return x * x; }
int main() {
	print(square(9));
	return 0;
}`)
	if err != nil {
		panic(err)
	}
	out, err := pok.Execute(prog, 0)
	if err != nil {
		panic(err)
	}
	fmt.Print(out)
	// Output: 81
}

// ExampleRun times a dependence chain on the naive and bit-sliced
// machines, showing the paper's central effect.
func ExampleRun() {
	src := `
main:
	li $t0, 500
loop:
	addu $t1, $t1, $t0
	addu $t1, $t1, $t0
	addu $t1, $t1, $t0
	addu $t1, $t1, $t0
	addiu $t0, $t0, -1
	bne $t0, $zero, loop
	li $v0, 10
	syscall
`
	assemble := func() *pok.Program {
		p, err := pok.Assemble(src)
		if err != nil {
			panic(err)
		}
		return p
	}
	naive, err := pok.Run(assemble(), pok.SimplePipelined(2), 0)
	if err != nil {
		panic(err)
	}
	sliced, err := pok.Run(assemble(), pok.BitSliced(2), 0)
	if err != nil {
		panic(err)
	}
	fmt.Println(sliced.Cycles < naive.Cycles)
	// Output: true
}

// ExampleSimulateBenchmark runs one of the paper's benchmark stand-ins.
func ExampleSimulateBenchmark() {
	r, err := pok.SimulateBenchmark("li", pok.BitSliced(2), 10_000)
	if err != nil {
		panic(err)
	}
	fmt.Println(r.Benchmark, r.Insts)
	// Output: li 10000
}
