// pok-check runs workloads through the timing model under the lockstep
// functional oracle, the per-cycle invariant checker and (optionally)
// the deterministic fault injector, and exits non-zero with a
// structured JSON report if the machine ever diverges from the
// reference, violates a structural invariant, or stops making forward
// progress.
//
// Usage:
//
//	pok-check -bench gzip -config slice2 -insts 200000
//	pok-check -all -inject -seed 1 -scheduler both
//	pok-check -bench li -corrupt 1000        # prove divergence detection
//	pok-check -bench li -wedge 500           # prove the deadlock watchdog
//	pok-check -prog repro.s -config slice2   # replay a soak repro bundle
//
// With -inject, every fault perturbs speculation only (slice verify
// flips, forced MRU way mispredicts, fake partial-address conflicts,
// replay storms); a correct machine recovers from all of them to an
// oracle-identical commit stream, which is exactly what this tool
// asserts. -corrupt and -wedge are deliberate failure hooks used to
// prove the detectors themselves work.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"

	"pok"
)

func configByName(name string) (pok.Config, error) {
	switch name {
	case "base", "ideal":
		return pok.BaseConfig(), nil
	case "simple2":
		return pok.SimplePipelined(2), nil
	case "simple4":
		return pok.SimplePipelined(4), nil
	case "slice2", "bitslice2":
		return pok.BitSliced(2), nil
	case "slice4", "bitslice4":
		return pok.BitSliced(4), nil
	}
	return pok.Config{}, fmt.Errorf("unknown config %q (base, simple2, simple4, slice2, slice4)", name)
}

func main() {
	bench := flag.String("bench", "", "comma-separated benchmark names")
	progFile := flag.String("prog", "", "assemble and check this .s file instead of -bench (repro-bundle replay)")
	all := flag.Bool("all", false, "run every benchmark in the suite")
	cfgNames := flag.String("config", "slice2", "comma-separated machine configs: base, simple2, simple4, slice2, slice4")
	sched := flag.String("scheduler", "both", "scheduler(s) to run: event, legacy, both")
	insts := flag.Uint64("insts", 200_000, "instruction budget per run (0 = to completion)")
	seed := flag.Uint64("seed", 1, "first injection seed")
	seeds := flag.Int("seeds", 1, "number of consecutive seeds to run (seed matrix)")
	injectOn := flag.Bool("inject", false, "enable fault injection")
	flipRate := flag.Float64("flip-rate", 0.02, "per-(seq,slice) result-corruption probability")
	wayRate := flag.Float64("waymiss-rate", 0.10, "forced MRU way-mispredict probability per load")
	conflictRate := flag.Float64("conflict-rate", 0.05, "fake disambiguation-conflict probability per load")
	stormEvery := flag.Uint64("storm-every", 20_000, "replay-storm period in sequence numbers (0 = off)")
	stormLen := flag.Uint64("storm-len", 8, "replay-storm burst length")
	deadlockBudget := flag.Int64("deadlock-budget", 0, "no-commit cycle budget before ErrDeadlock (0 = default)")
	wedge := flag.Int64("wedge", -1, "wedge this sequence number forever (deadlock-watchdog test hook)")
	corrupt := flag.Int64("corrupt", -1, "corrupt the commit record at this commit index (oracle test hook)")
	minFaults := flag.Uint64("min-faults", 0, "fail unless at least this many faults were delivered in total")
	jsonOut := flag.String("json", "", "write the report array as JSON to this file (\"-\" = stdout)")
	flag.Parse()

	// target is one program to drive through the check matrix: a named
	// benchmark from the suite, or a standalone .s file (-prog), which
	// is how soak repro bundles replay.
	type target struct {
		name   string
		prog   *pok.Program
		warmup uint64
	}
	var targets []target
	switch {
	case *progFile != "":
		src, err := os.ReadFile(*progFile)
		if err != nil {
			fatal(err)
		}
		prog, err := pok.Assemble(string(src))
		if err != nil {
			fatal(fmt.Errorf("%s: %w", *progFile, err))
		}
		name := strings.TrimSuffix(filepath.Base(*progFile), filepath.Ext(*progFile))
		targets = append(targets, target{name: name, prog: prog})
	case *all:
		for _, name := range pok.Benchmarks() {
			targets = append(targets, target{name: name})
		}
	case *bench != "":
		for _, name := range strings.Split(*bench, ",") {
			targets = append(targets, target{name: strings.TrimSpace(name)})
		}
	default:
		fatal(fmt.Errorf("need -bench, -prog or -all"))
	}
	var schedulers []bool // LegacyScheduler values
	switch *sched {
	case "both":
		schedulers = []bool{false, true}
	case "event":
		schedulers = []bool{false}
	case "legacy":
		schedulers = []bool{true}
	default:
		fatal(fmt.Errorf("unknown -scheduler %q (event, legacy, both)", *sched))
	}

	// First SIGINT/SIGTERM drains the in-flight run to its commit
	// frontier and emits everything collected so far as a partial
	// result; a second signal kills. The stop trigger of whichever run
	// is live is published through stopFn by its OnStart hook.
	var (
		stopReq atomic.Bool
		stopMu  sync.Mutex
		stopFn  func(reason string)
	)
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sigCh
		stopReq.Store(true)
		stopMu.Lock()
		if stopFn != nil {
			stopFn(fmt.Sprintf("signal %v", s))
		}
		stopMu.Unlock()
		fmt.Fprintln(os.Stderr, "pok-check: interrupt — draining current run (repeat to kill)")
		signal.Stop(sigCh)
	}()

	var (
		reports     []*pok.CheckReport
		failures    int
		totalFaults uint64
		interrupted bool
	)
matrix:
	for _, tgt := range targets {
		prog := tgt.prog
		warmup := tgt.warmup
		if prog == nil {
			w, err := pok.GetWorkload(tgt.name)
			if err != nil {
				fatal(err)
			}
			prog, err = w.Program(w.DefaultScale)
			if err != nil {
				fatal(err)
			}
			warmup = w.FastForward
		}
		for _, cfgName := range strings.Split(*cfgNames, ",") {
			cfg, err := configByName(strings.TrimSpace(cfgName))
			if err != nil {
				fatal(err)
			}
			for _, legacy := range schedulers {
				for s := 0; s < *seeds; s++ {
					if stopReq.Load() {
						interrupted = true
						break matrix
					}
					runSeed := *seed + uint64(s)
					cfg := cfg
					cfg.LegacyScheduler = legacy
					opts := pok.CheckOptions{
						Benchmark: tgt.name,
						Warmup:    warmup,
						MaxInsts:  *insts,
						Invariants: &pok.InvariantConfig{
							DeadlockBudget: *deadlockBudget,
						},
						OnStart: func(stop func(reason string)) {
							stopMu.Lock()
							stopFn = stop
							stopMu.Unlock()
							if stopReq.Load() {
								stop("signal interrupt")
							}
						},
					}
					var inj *pok.FaultInjector
					if *injectOn || *wedge >= 0 || *corrupt >= 0 {
						iopt := pok.InjectOptions{Seed: runSeed}
						if *injectOn {
							iopt.SliceFlipRate = *flipRate
							iopt.WayMissRate = *wayRate
							iopt.ConflictRate = *conflictRate
							iopt.StormEvery = *stormEvery
							iopt.StormLen = *stormLen
						}
						if *wedge >= 0 {
							iopt.WedgeOn, iopt.WedgeSeq = true, uint64(*wedge)
						}
						if *corrupt >= 0 {
							iopt.CorruptOn, iopt.CorruptAt = true, uint64(*corrupt)
						}
						inj = pok.NewInjector(iopt)
						opts.Injector = inj
					}
					rep, err := pok.RunChecked(prog, cfg, opts)
					if err != nil {
						fatal(err)
					}
					rep.Seed = runSeed
					reports = append(reports, rep)
					if inj != nil {
						totalFaults += inj.Total()
					}
					printLine(rep, inj)
					if !rep.OK {
						failures++
					}
					if rep.Stopped {
						interrupted = true
						break matrix
					}
				}
			}
		}
	}

	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, reports); err != nil {
			fatal(err)
		}
	}
	if *injectOn {
		fmt.Printf("total faults delivered: %d\n", totalFaults)
	}
	// A partial matrix can't be held to the fault floor.
	if *minFaults > 0 && totalFaults < *minFaults && !interrupted {
		fmt.Fprintf(os.Stderr, "pok-check: only %d faults delivered, need %d\n",
			totalFaults, *minFaults)
		os.Exit(1)
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "pok-check: %d of %d runs failed\n", failures, len(reports))
		os.Exit(1)
	}
	if interrupted {
		fmt.Fprintf(os.Stderr, "pok-check: interrupted — %d run(s) completed, partial results above\n",
			len(reports))
		os.Exit(130)
	}
	fmt.Printf("pok-check: %d runs ok\n", len(reports))
}

func printLine(r *pok.CheckReport, inj *pok.FaultInjector) {
	status := "ok  "
	if !r.OK {
		status = "FAIL"
	}
	faults := uint64(0)
	if inj != nil {
		faults = inj.Total()
	}
	fmt.Printf("%s %-8s %-8s %-6s seed=%d insts=%d cycles=%d replays=%d faults=%d",
		status, r.Benchmark, r.Config, r.Scheduler, r.Seed, r.Insts, r.Cycles,
		r.Replays, faults)
	if !r.OK {
		fmt.Printf(" kind=%s", r.FailKind)
	}
	fmt.Println()
	if !r.OK {
		// The structured report goes to stdout so a failing CI log is
		// self-contained.
		b, err := json.MarshalIndent(r, "", "  ")
		if err == nil {
			fmt.Println(string(b))
		}
	}
}

func writeJSON(path string, reports []*pok.CheckReport) error {
	b, err := json.MarshalIndent(reports, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(b)
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pok-check:", err)
	os.Exit(1)
}
