// pok-prof is the cycle-accounting and critical-path profiler over the
// telemetry event stream: it explains where a run's cycles went.
//
// Offline, it consumes JSONL event dumps written by pok-sim -events;
// live, it runs a benchmark itself with the profiling collector
// attached (-bench/-config/-insts, no dump needed).
//
// Usage:
//
//	pok-sim -bench gzip -config slice2 -insts 20000 -events s2.jsonl
//	pok-sim -bench gzip -config slice4 -insts 20000 -events s4.jsonl
//	pok-prof -cpistack s2.jsonl            # one run's CPI stack
//	pok-prof -cpistack -compare s2.jsonl s4.jsonl   # side-by-side diff
//	pok-prof -critpath s4.jsonl            # longest dependence chain
//	pok-prof -perfetto trace.json s4.jsonl # Chrome trace-event export
//	pok-prof -cpistack -bench gzip -config slice4 -insts 20000  # live
//
// -critpath refuses lossy dumps (the bounded ring dropped events): a
// partial stream would silently produce a wrong path. Re-dump with a
// larger pok-sim -events-cap instead.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"pok"
)

func main() {
	cpistack := flag.Bool("cpistack", false, "print the run's CPI stack (cycle accounting)")
	critpath := flag.Bool("critpath", false, "print the run's critical dependence path")
	perfetto := flag.String("perfetto", "", "write a Chrome trace-event (Perfetto) JSON to this file")
	compare := flag.Bool("compare", false, "diff the CPI stacks of two dumps side by side")
	steps := flag.Int("steps", 24, "critical-path hops to print (0 = all)")
	selfProf := flag.Bool("self", false, "overlay the profiler's own wall-time phases in the Perfetto export")
	bench := flag.String("bench", "", "live mode: run this benchmark instead of reading a dump")
	cfgName := flag.String("config", "slice4", "live mode: machine config (base, simple2, simple4, slice2, slice4)")
	insts := flag.Uint64("insts", 20_000, "live mode: instruction budget")
	flag.Parse()

	if !*cpistack && !*critpath && *perfetto == "" {
		*cpistack = true // the default question is "where did the cycles go"
	}

	sp := pok.NewSelfProfile()

	var runs []*run
	switch {
	case *bench != "":
		if flag.NArg() != 0 {
			fatal(fmt.Errorf("live mode (-bench) takes no dump arguments"))
		}
		done := sp.Phase("simulate")
		r, err := liveRun(*bench, *cfgName, *insts)
		done()
		if err != nil {
			fatal(err)
		}
		runs = append(runs, r)
	case *compare:
		if flag.NArg() != 2 {
			fatal(fmt.Errorf("-compare needs exactly two dumps: pok-prof -compare a.jsonl b.jsonl"))
		}
		fallthrough
	default:
		if flag.NArg() < 1 {
			fmt.Fprintln(os.Stderr, "usage: pok-prof [flags] dump.jsonl [dump2.jsonl]   (use - for stdin; or -bench for live mode)")
			flag.PrintDefaults()
			os.Exit(2)
		}
		done := sp.Phase("parse dumps")
		for _, path := range flag.Args() {
			r, err := loadDump(path)
			if err != nil {
				fatal(err)
			}
			runs = append(runs, r)
		}
		done()
	}

	if *compare {
		if len(runs) != 2 {
			fatal(fmt.Errorf("-compare needs exactly two runs"))
		}
		done := sp.Phase("cpi stacks")
		a, err := runs[0].stack()
		if err != nil {
			fatal(err)
		}
		b, err := runs[1].stack()
		if err != nil {
			fatal(err)
		}
		done()
		fmt.Print(pok.RenderCPIStackCompare(a, b))
		selfCheck(a)
		selfCheck(b)
	} else if *cpistack {
		done := sp.Phase("cpi stack")
		for _, r := range runs {
			st, err := r.stack()
			if err != nil {
				fatal(err)
			}
			fmt.Print(st.Render())
			selfCheck(st)
		}
		done()
	}

	if *critpath {
		done := sp.Phase("critical path")
		for _, r := range runs {
			if r.dropped > 0 {
				fatal(fmt.Errorf("%s is lossy: the event ring dropped %d events, so the "+
					"rebuilt dependence DAG would be incomplete and the reported path wrong; "+
					"re-dump with a larger pok-sim -events-cap", r.name, r.dropped))
			}
			cp, err := pok.BuildCriticalPath(r.events)
			if err != nil {
				fatal(err)
			}
			if len(runs) > 1 {
				fmt.Printf("== %s\n", r.name)
			}
			fmt.Print(cp.Render(*steps))
		}
		done()
	}

	if *perfetto != "" {
		done := sp.Phase("perfetto export")
		f, err := os.Create(*perfetto)
		if err != nil {
			fatal(err)
		}
		opt := pok.PerfettoOptions{}
		if *selfProf {
			opt.Self = sp
		}
		if err := pok.WritePerfetto(f, runs[0].events, opt); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		done()
		fmt.Printf("wrote Perfetto trace to %s (load in ui.perfetto.dev)\n", *perfetto)
	}

	if *selfProf {
		fmt.Print(sp.Render())
	}
}

// run is one event stream plus its labels and loss accounting.
type run struct {
	name      string
	benchmark string
	config    string
	cycles    int64
	dropped   uint64
	events    []pok.TelemetryEvent
}

// stack builds the run's CPI stack and prints nothing.
func (r *run) stack() (*pok.CPIStack, error) {
	st, err := pok.BuildCPIStack(r.events, r.cycles)
	if err != nil {
		return nil, err
	}
	st.Benchmark, st.Config = r.benchmark, r.config
	st.Lossy = r.dropped > 0
	return st, nil
}

// loadDump reads a JSONL dump ("-" = stdin), honouring the meta header
// when present.
func loadDump(path string) (*run, error) {
	var in io.Reader
	if path == "-" {
		in = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		in = f
	}
	meta, events, err := pok.ReadEventsDump(in)
	if err != nil {
		return nil, err
	}
	r := &run{name: path, events: events}
	if meta != nil {
		r.benchmark, r.config = meta.Benchmark, meta.Config
		r.cycles, r.dropped = meta.Cycles, meta.Dropped
	}
	if r.benchmark == "" {
		r.benchmark = path
	}
	return r, nil
}

// liveRun simulates the benchmark with the profiling collector chained
// onto a standard recorder.
func liveRun(bench, cfgName string, insts uint64) (*run, error) {
	cfg, err := configByName(cfgName)
	if err != nil {
		return nil, err
	}
	lc := pok.NewProfileCollector(cfg.NewRecorder(0))
	cfg.Collector = lc
	res, err := pok.SimulateBenchmark(bench, cfg, insts)
	if err != nil {
		return nil, err
	}
	return &run{
		name:      bench + "/" + cfgName,
		benchmark: bench,
		config:    cfgName,
		cycles:    res.Cycles,
		events:    lc.Events(),
	}, nil
}

// selfCheck verifies the cycle-accounting invariant on every printed
// stack: attributed cycles must sum exactly to the run total (CI greps
// for the "100.00%" line).
func selfCheck(st *pok.CPIStack) {
	sum := st.Sum()
	if st.Cycles > 0 && sum == st.Cycles {
		fmt.Printf("accounted %d/%d cycles (100.00%%)\n", sum, st.Cycles)
		return
	}
	pct := 0.0
	if st.Cycles > 0 {
		pct = 100 * float64(sum) / float64(st.Cycles)
	}
	fmt.Printf("accounted %d/%d cycles (%.2f%%) — attribution mismatch\n", sum, st.Cycles, pct)
}

func configByName(name string) (pok.Config, error) {
	switch name {
	case "base", "ideal":
		return pok.BaseConfig(), nil
	case "simple2":
		return pok.SimplePipelined(2), nil
	case "simple4":
		return pok.SimplePipelined(4), nil
	case "slice2", "bitslice2":
		return pok.BitSliced(2), nil
	case "slice4", "bitslice4":
		return pok.BitSliced(4), nil
	}
	return pok.Config{}, fmt.Errorf("unknown config %q (base, simple2, simple4, slice2, slice4)", name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pok-prof:", err)
	os.Exit(1)
}
