// pok-soak runs the random-program differential soak: seeded generated
// PISA programs (internal/gen) execute under emulator-vs-core lockstep
// verification across a machine-config × scheduler × injection-seed
// matrix; any divergence, invariant violation, deadlock, panic or
// timeout is delta-debugged to a minimal program and written out as a
// self-contained repro bundle (prog.s + repro.json, replayable with
// `pok-check -prog`). The soak frontier is checkpointed so multi-hour
// runs survive interruption and continue with -resume.
//
// Usage:
//
//	pok-soak -programs 500 -seed 1                  # fixed program count
//	pok-soak -duration 90s -seeds 3                 # time-boxed, 3 base seeds
//	pok-soak -programs 200 -resume                  # continue after a kill
//	pok-soak -programs 50 -corrupt 5                # seeded fault: prove the pipeline
//	pok-soak -programs 500 -submit http://host:8080 # same campaign, on the fleet
//
// With -submit the campaign runs as a pok-serve fleet job instead of
// in-process: it is sharded across the attached workers and the merged
// findings report is byte-identical to the single-process run (the
// per-program seed is a pure function of the base seed and index).
// Requires -programs (fleet cells are count-sharded, not time-boxed).
//
// Exit status is non-zero iff any finding was recorded.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"pok/internal/check/inject"
	"pok/internal/ckpt"
	"pok/internal/gen"
	"pok/internal/metrics"
	"pok/internal/profile"
	"pok/internal/serve"
	"pok/internal/sig"
	"pok/internal/soak"
)

func main() {
	programs := flag.Int("programs", 0, "number of generated programs per base seed (0 = use -duration)")
	seed := flag.Uint64("seed", 1, "first base seed")
	seeds := flag.Int("seeds", 1, "number of consecutive base seeds to soak")
	duration := flag.Duration("duration", 0, "time box per base seed (0 = use -programs)")
	configs := flag.String("configs", "simple4,slice2,slice4", "comma-separated machine configs")
	sched := flag.String("scheduler", "both", "scheduler(s): event, legacy, both")
	insts := flag.Uint64("insts", 0, "instruction budget per run (0 = to completion)")
	watchdog := flag.Duration("watchdog", 30*time.Second, "per-run wall-clock watchdog")
	retries := flag.Int("retries", 1, "retries for a timed-out run before recording it")
	injectSeeds := flag.Int("inject-seeds", 0, "fault-injection campaigns per cell beyond the clean run")
	flipRate := flag.Float64("flip-rate", 0.02, "injection: per-(seq,slice) result-corruption probability")
	wayRate := flag.Float64("waymiss-rate", 0.10, "injection: forced MRU way-mispredict probability")
	conflictRate := flag.Float64("conflict-rate", 0.05, "injection: fake disambiguation-conflict probability")
	corrupt := flag.Int64("corrupt", -1, "seed a commit corruption at this commit index on every run (detector/pipeline proof)")
	wedge := flag.Int64("wedge", -1, "wedge this sequence number forever on every run (watchdog proof)")
	fragments := flag.Int("fragments", 0, "generator: body fragments per program (0 = default)")
	loopIters := flag.Int("loop-iters", 0, "generator: outer-loop trip count (0 = default)")
	genInsts := flag.Uint64("gen-insts", 0, "generator: dynamic instruction budget (0 = default)")
	noReduce := flag.Bool("no-reduce", false, "skip delta-debugging of findings")
	reduceTests := flag.Int("reduce-tests", 400, "candidate-evaluation budget per reduction")
	maxFindings := flag.Int("max-findings", 20, "stop a base seed early after this many findings")
	outDir := flag.String("out", "soak-out", "output directory (findings JSON + repro bundles)")
	checkpoint := flag.String("checkpoint", "", "checkpoint file (default <out>/checkpoint-<seed>.json)")
	checkpointEvery := flag.Int("checkpoint-every", 25, "programs between checkpoint snapshots")
	instCkpt := flag.Uint64("inst-ckpt", 0, "architectural checkpoint cadence in committed instructions inside every detection run (0 = program-boundary checkpoints only); makes SIGINT and -resume instruction-granular")
	resume := flag.Bool("resume", false, "resume from the checkpoint file")
	register := flag.Bool("register-workloads", false, "register generated programs as ad-hoc workloads")
	submit := flag.String("submit", "", "submit the campaign to this pok-serve coordinator URL instead of running in-process")
	cellPrograms := flag.Int("cell-programs", 0, "-submit: programs per fleet cell (0 = programs/8)")
	withMetrics := flag.Bool("metrics", false, "write metrics-<seed>.json (CPI stacks, throughput) and print a campaign summary; never changes findings")
	quiet := flag.Bool("q", false, "suppress per-program progress lines")
	flag.Parse()

	if *programs <= 0 && *duration <= 0 {
		fatal(fmt.Errorf("need -programs or -duration"))
	}
	if *submit != "" && *programs <= 0 {
		fatal(fmt.Errorf("-submit needs -programs (fleet cells are count-sharded, not time-boxed)"))
	}
	var schedulers []string
	switch *sched {
	case "both":
		schedulers = []string{"event", "legacy"}
	case "event", "legacy":
		schedulers = []string{*sched}
	default:
		fatal(fmt.Errorf("unknown -scheduler %q (event, legacy, both)", *sched))
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}

	injOpts := inject.Options{}
	useInject := *injectSeeds > 0
	if useInject {
		injOpts.SliceFlipRate = *flipRate
		injOpts.WayMissRate = *wayRate
		injOpts.ConflictRate = *conflictRate
	}
	// The -corrupt/-wedge hooks ride on the *clean* cell (InjectSeeds
	// stays as given): they seed a deliberate fault into every run, so
	// the soak must catch it and the reducer must shrink it — the
	// end-to-end pipeline proof.
	var hookOpts *inject.Options
	if *corrupt >= 0 || *wedge >= 0 {
		hookOpts = &inject.Options{}
		if *corrupt >= 0 {
			hookOpts.CorruptOn, hookOpts.CorruptAt = true, uint64(*corrupt)
		}
		if *wedge >= 0 {
			hookOpts.WedgeOn, hookOpts.WedgeSeq = true, uint64(*wedge)
		}
	}

	// First SIGINT/SIGTERM requests a drain: with -inst-ckpt the
	// campaign stops at the next drained snapshot inside the current
	// run, otherwise at the next program boundary — either way the
	// checkpoint file holds a cursor -resume continues from exactly.
	// A second signal kills the process (default disposition).
	var stopReq atomic.Bool
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigCh
		stopReq.Store(true)
		fmt.Fprintln(os.Stderr, "pok-soak: interrupt — draining to the next checkpoint (repeat to kill)")
		signal.Stop(sigCh)
	}()

	totalFindings := 0
	interrupted := false
	for s := 0; s < *seeds; s++ {
		base := *seed + uint64(s)
		cp := *checkpoint
		if cp == "" {
			cp = filepath.Join(*outDir, fmt.Sprintf("checkpoint-%d.json", base))
		}
		opts := soak.Options{
			BaseSeed:        base,
			Programs:        *programs,
			Duration:        *duration,
			Configs:         strings.Split(*configs, ","),
			Schedulers:      schedulers,
			InjectSeeds:     *injectSeeds,
			Inject:          injOpts,
			MaxInsts:        *insts,
			Watchdog:        *watchdog,
			Retries:         *retries,
			NoReduce:        *noReduce,
			ReduceMaxTests:  *reduceTests,
			MaxFindings:     *maxFindings,
			OutDir:          *outDir,
			Checkpoint:      cp,
			CheckpointEvery: *checkpointEvery,
			Gen: gen.Options{
				Fragments: *fragments,
				LoopIters: *loopIters,
				MaxInsts:  *genInsts,
			},
			RegisterWorkloads: *register,
			CkptInsts:         *instCkpt,
		}
		if hookOpts != nil {
			opts.Hook = hookOpts
		}
		if !*quiet {
			opts.Log = os.Stderr
		}
		opts.Progress = func(next int, rep *soak.Report) (int, bool) {
			return 0, stopReq.Load()
		}
		if *instCkpt > 0 {
			opts.CellCursor = func(program, cell int, rep *soak.Report, s *ckpt.Snapshot) bool {
				return stopReq.Load()
			}
		}
		var lastSnap *metrics.Snapshot
		if *withMetrics && *submit == "" {
			opts.Snapshot = func(next int, snap *metrics.Snapshot) { lastSnap = snap }
		}
		var rep *soak.Report
		var err error
		if *submit != "" {
			rep, err = submitCampaign(*submit, opts, *cellPrograms)
		} else {
			rep, err = soak.Run(opts, *resume)
		}
		if err != nil {
			fatal(err)
		}
		if lastSnap != nil {
			mpath := filepath.Join(*outDir, fmt.Sprintf("metrics-%d.json", base))
			if err := writeJSON(mpath, lastSnap); err != nil {
				fatal(err)
			}
			fmt.Printf("seed %d: %.1f Minst in %s (%.2f Minst/s), %d replays, %d squashes -> %s\n",
				base, float64(lastSnap.Insts)/1e6,
				time.Duration(lastSnap.WallNanos).Round(time.Millisecond),
				lastSnap.MinstPerSec(), lastSnap.Replays, lastSnap.Squashes, mpath)
			for _, cfg := range sortedKeys(lastSnap.Stacks) {
				st := lastSnap.Stacks[cfg]
				if st.Insts == 0 {
					continue
				}
				fmt.Printf("  %-10s CPI %.3f  %s\n", cfg,
					float64(st.Cycles)/float64(st.Insts), cpiBreakdown(st))
			}
		}
		path := filepath.Join(*outDir, fmt.Sprintf("findings-%d.json", base))
		if err := writeJSON(path, rep); err != nil {
			fatal(err)
		}
		fmt.Printf("seed %d: %d programs, %d runs, %d findings -> %s\n",
			base, rep.Programs, rep.Runs, len(rep.Findings), path)
		for _, f := range rep.Findings {
			fmt.Printf("  FINDING p%04d %s/%s kind=%s field=%s reduced=%d bundle=%s\n",
				f.Program, f.Config, f.Scheduler, f.Kind, f.Field,
				f.ReducedInsts, f.Bundle)
		}
		if deduped := rep.Deduped(); len(deduped) > 0 {
			dpath := filepath.Join(*outDir, fmt.Sprintf("deduped-%d.json", base))
			if err := writeJSON(dpath, deduped); err != nil {
				fatal(err)
			}
			var d sig.Deduper
			for _, f := range rep.Findings {
				d.Add(f.Signature())
			}
			fmt.Printf("  %s\n", strings.ReplaceAll(d.Summary(), "\n", "\n  "))
		}
		totalFindings += len(rep.Findings)
		if rep.CkptErrs > 0 {
			fmt.Fprintf(os.Stderr, "pok-soak: WARNING: seed %d: %d checkpoint write failures (last: %s)\n",
				base, rep.CkptErrs, rep.LastCkptErr)
		}
		if rep.Stopped {
			fmt.Fprintf(os.Stderr, "pok-soak: seed %d interrupted at program %d; continue with -resume\n",
				base, rep.Programs)
			interrupted = true
			break
		}
	}
	if totalFindings > 0 {
		fmt.Fprintf(os.Stderr, "pok-soak: %d findings\n", totalFindings)
		os.Exit(1)
	}
	if interrupted {
		os.Exit(130)
	}
	fmt.Println("pok-soak: clean")
}

// submitCampaign runs the campaign as a pok-serve fleet job: same
// options, sharded across the attached workers, merged findings
// byte-identical to the in-process run (as long as no MaxFindings
// early stop triggers — fleet jobs apply that cap per cell).
func submitCampaign(url string, opts soak.Options, cellPrograms int) (*soak.Report, error) {
	spec := serve.JobSpec{Kind: "soak", Soak: &serve.SoakSpec{
		BaseSeed:       opts.BaseSeed,
		Programs:       opts.Programs,
		Configs:        opts.Configs,
		Schedulers:     opts.Schedulers,
		InjectSeeds:    opts.InjectSeeds,
		Inject:         opts.Inject,
		Hook:           opts.Hook,
		MaxInsts:       opts.MaxInsts,
		Watchdog:       opts.Watchdog,
		Retries:        opts.Retries,
		NoReduce:       opts.NoReduce,
		ReduceMaxTests: opts.ReduceMaxTests,
		MaxFindings:    opts.MaxFindings,
		Gen:            opts.Gen,
		CellPrograms:   cellPrograms,
		InstCkpt:       opts.CkptInsts,
	}}
	client := serve.NewClient(url)
	id, err := client.Submit(spec)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "pok-soak: submitted %s (seed %d, %d programs) to %s\n",
		id, opts.BaseSeed, opts.Programs, url)
	res, err := client.Wait(context.Background(), id, 0)
	if err != nil {
		return nil, err
	}
	return res.Soak, nil
}

func sortedKeys(m map[string]*profile.CPIStack) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// cpiBreakdown prints the non-zero CPI-stack components as
// "name share%" pairs, largest first.
func cpiBreakdown(st *profile.CPIStack) string {
	if st.Cycles == 0 {
		return ""
	}
	type part struct {
		name  string
		share float64
	}
	var parts []part
	for c := 0; c < profile.NumComponents; c++ {
		if st.Comp[c] == 0 {
			continue
		}
		parts = append(parts, part{
			profile.Component(c).String(),
			100 * float64(st.Comp[c]) / float64(st.Cycles),
		})
	}
	sort.Slice(parts, func(a, b int) bool { return parts[a].share > parts[b].share })
	var b strings.Builder
	for i, p := range parts {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s %.0f%%", p.name, p.share)
	}
	return b.String()
}

func writeJSON(path string, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pok-soak:", err)
	os.Exit(1)
}
