// pok-cc compiles a MiniC source file to assembly (the toolchain
// companion to pok-asm: the paper's benchmarks are compiled C programs).
//
// Usage:
//
//	pok-cc prog.c                # print generated assembly
//	pok-cc -run prog.c           # compile, assemble and execute
//	pok-cc -sim slice2 prog.c    # compile and run the timing model
package main

import (
	"flag"
	"fmt"
	"os"

	"pok"
	"pok/internal/cc"
)

func main() {
	run := flag.Bool("run", false, "execute the compiled program")
	sim := flag.String("sim", "", "simulate under a config (base, simple2, simple4, slice2, slice4)")
	insts := flag.Uint64("insts", 0, "instruction budget for -sim/-run (0 = to completion)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pok-cc [-run|-sim config] file.c")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	text, err := cc.Compile(string(src))
	if err != nil {
		fatal(err)
	}

	switch {
	case *run:
		prog, err := pok.Assemble(text)
		if err != nil {
			fatal(err)
		}
		out, err := pok.Execute(prog, *insts)
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)
	case *sim != "":
		cfg, err := configByName(*sim)
		if err != nil {
			fatal(err)
		}
		prog, err := pok.Assemble(text)
		if err != nil {
			fatal(err)
		}
		r, err := pok.Run(prog, cfg, *insts)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("config %s: %d insts, %d cycles, IPC %.3f\n",
			r.Config, r.Insts, r.Cycles, r.IPC)
	default:
		fmt.Print(text)
	}
}

func configByName(name string) (pok.Config, error) {
	switch name {
	case "base", "ideal":
		return pok.BaseConfig(), nil
	case "simple2":
		return pok.SimplePipelined(2), nil
	case "simple4":
		return pok.SimplePipelined(4), nil
	case "slice2", "bitslice2":
		return pok.BitSliced(2), nil
	case "slice4", "bitslice4":
		return pok.BitSliced(4), nil
	}
	return pok.Config{}, fmt.Errorf("unknown config %q", name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pok-cc:", err)
	os.Exit(1)
}
