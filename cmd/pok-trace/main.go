// pok-trace renders a per-instruction slice-pipeline timeline — the
// textual analogue of the paper's Figure 1 wavefront diagram — from a
// JSONL telemetry event dump produced by pok-sim -events.
//
// Usage:
//
//	pok-sim -bench gzip -config slice4 -insts 20000 -events dump.jsonl
//	pok-trace dump.jsonl                      # first 64 instructions
//	pok-trace -from 1200 -to 1260 dump.jsonl  # a window of interest
//	pok-trace -stats dump.jsonl               # event-kind census only
//	cat dump.jsonl | pok-trace -              # read from stdin
//
// Lane legend: F fetch, D dispatch, 0-7 slice issue, e full-width op,
// * several slices in one cycle, r replay, m memory issue, b/B branch
// resolve (B = early partial-compare resolution), C commit, S squash.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"pok"
)

func main() {
	fromSeq := flag.Uint64("from", 0, "first instruction sequence number to render")
	toSeq := flag.Uint64("to", 0, "last instruction sequence number (0 = unbounded)")
	fromCycle := flag.Int64("from-cycle", 0, "clip the horizontal axis to start at this cycle")
	toCycle := flag.Int64("to-cycle", 0, "clip the horizontal axis to end at this cycle (0 = auto)")
	rows := flag.Int("rows", 0, "maximum instruction rows (0 = 64)")
	cols := flag.Int("cols", 0, "maximum cycle columns (0 = 160)")
	statsOnly := flag.Bool("stats", false, "print an event-kind census instead of the timeline")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pok-trace [flags] dump.jsonl   (use - for stdin)")
		flag.PrintDefaults()
		os.Exit(2)
	}

	var in io.Reader
	if path := flag.Arg(0); path == "-" {
		in = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	events, err := pok.ReadEventsJSONL(in)
	if err != nil {
		fatal(err)
	}

	if *statsOnly {
		printStats(events)
		return
	}
	fmt.Print(pok.RenderTimeline(events, pok.TimelineOptions{
		FromSeq: *fromSeq, ToSeq: *toSeq,
		FromCycle: *fromCycle, ToCycle: *toCycle,
		MaxRows: *rows, MaxCols: *cols,
	}))
}

// printStats summarizes the dump: span, instruction count, and the
// per-kind event census.
func printStats(events []pok.TelemetryEvent) {
	if len(events) == 0 {
		fmt.Println("empty dump")
		return
	}
	counts := map[string]uint64{}
	seqs := map[uint64]bool{}
	lo, hi := events[0].Cycle, events[0].Cycle
	for _, ev := range events {
		counts[ev.Kind.String()]++
		seqs[ev.Seq] = true
		if ev.Cycle < lo {
			lo = ev.Cycle
		}
		if ev.Cycle > hi {
			hi = ev.Cycle
		}
	}
	fmt.Printf("%d events, %d instructions, cycles %d..%d\n",
		len(events), len(seqs), lo, hi)
	kinds := make([]string, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Printf("  %-15s %d\n", k, counts[k])
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pok-trace:", err)
	os.Exit(1)
}
