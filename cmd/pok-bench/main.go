// pok-bench regenerates every table and figure of the paper's evaluation
// section and writes the rendered results to stdout and, optionally, to a
// results directory (one file per experiment).
//
// Usage:
//
//	pok-bench                 # full evaluation at the default budget
//	pok-bench -insts 100000   # quicker pass
//	pok-bench -out results/   # also write per-experiment files
//	pok-bench -json           # machine-readable BENCH_<date>.json regression record
//	pok-bench -cpuprofile cpu.out -memprofile mem.out
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"pok"
)

// experimentRecord is one entry of the -json benchmark-regression file:
// the wall-clock cost of an experiment plus, where the experiment exposes
// them, simulation-throughput and quality metrics. Committing these files
// from successive runs (BENCH_<date>.json) gives the repo a perf history
// that catches slowdowns the unit tests cannot.
type experimentRecord struct {
	Experiment string `json:"experiment"`
	WallMillis int64  `json:"wall_ms"`
	// SimCycles is the total number of simulated machine cycles the
	// experiment executed (0 when the experiment is trace-driven and has
	// no timing component).
	SimCycles int64 `json:"sim_cycles,omitempty"`
	// SimCyclesPerSec is the simulator's cycle throughput for this
	// experiment: SimCycles over the wall-clock time.
	SimCyclesPerSec float64 `json:"sim_cycles_per_sec,omitempty"`
	// MeanIPC averages the headline IPC over the experiment's rows.
	MeanIPC float64 `json:"mean_ipc,omitempty"`
}

type benchReport struct {
	Date        string             `json:"date"`
	GoVersion   string             `json:"go_version"`
	NumCPU      int                `json:"num_cpu"`
	InstsBudget uint64             `json:"insts_budget"`
	Parallel    int                `json:"parallel"`
	TotalWallMS int64              `json:"total_wall_ms"`
	Experiments []experimentRecord `json:"experiments"`
}

func main() {
	insts := flag.Uint64("insts", 0, "instruction budget per benchmark per run (0 = default)")
	ablations := flag.Bool("ablations", false, "also run the ablation studies (narrow-width, predictor, window)")
	outDir := flag.String("out", "", "directory to write per-experiment result files")
	benches := flag.String("bench", "", "comma-separated benchmarks (default: all)")
	parallel := flag.Int("parallel", runtime.NumCPU(), "concurrent benchmarks per experiment")
	jsonOut := flag.Bool("json", false, "write a BENCH_<date>.json regression record (to -out dir, or the working directory)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile (after all experiments) to this file")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	opt := pok.Options{MaxInsts: *insts, Parallel: *parallel}
	if *benches != "" {
		opt.Benchmarks = strings.Split(*benches, ",")
	}

	emit := func(name, content string) {
		fmt.Println(content)
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				fatal(err)
			}
			path := filepath.Join(*outDir, name+".txt")
			if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
				fatal(err)
			}
		}
	}

	var records []experimentRecord
	// record captures one experiment's wall time and derived metrics.
	record := func(name string, start time.Time, cycles int64, meanIPC float64) {
		wall := time.Since(start)
		r := experimentRecord{
			Experiment: name,
			WallMillis: wall.Milliseconds(),
			SimCycles:  cycles,
			MeanIPC:    meanIPC,
		}
		if cycles > 0 && wall > 0 {
			r.SimCyclesPerSec = float64(cycles) / wall.Seconds()
		}
		records = append(records, r)
	}

	start := time.Now()

	t1Start := time.Now()
	t1, err := pok.Table1(opt)
	if err != nil {
		fatal(err)
	}
	var t1Cycles int64
	var t1IPC float64
	for _, r := range t1 {
		if r.IPC > 0 {
			t1Cycles += int64(float64(r.Insts) / r.IPC)
		}
		t1IPC += r.IPC
	}
	if len(t1) > 0 {
		t1IPC /= float64(len(t1))
	}
	record("table1", t1Start, t1Cycles, t1IPC)
	emit("table1", pok.RenderTable1(t1))

	f2Start := time.Now()
	f2opt := opt
	if len(f2opt.Benchmarks) == 0 {
		f2opt.Benchmarks = []string{"bzip", "gcc"}
	}
	f2, err := pok.Figure2(f2opt)
	if err != nil {
		fatal(err)
	}
	record("figure2", f2Start, 0, 0)
	emit("figure2", pok.RenderFigure2(f2))

	f4Start := time.Now()
	f4opt := opt
	if len(f4opt.Benchmarks) == 0 {
		f4opt.Benchmarks = []string{"mcf", "twolf"}
	}
	f4, err := pok.Figure4(f4opt, nil)
	if err != nil {
		fatal(err)
	}
	record("figure4", f4Start, 0, 0)
	emit("figure4", pok.RenderFigure4(f4))

	f6Start := time.Now()
	f6, err := pok.Figure6(opt)
	if err != nil {
		fatal(err)
	}
	record("figure6", f6Start, 0, 0)
	emit("figure6", pok.RenderFigure6(f6))
	emit("figure6-plot", pok.PlotFigure6(f6))

	for _, sliceBy := range []int{2, 4} {
		f11Start := time.Now()
		f11, err := pok.Figure11(opt, sliceBy)
		if err != nil {
			fatal(err)
		}
		var cycles int64
		var ipc float64
		var nres int
		for _, row := range f11 {
			if row.BaseResult != nil {
				cycles += row.BaseResult.Cycles
			}
			for _, res := range row.Results {
				cycles += res.Cycles
			}
			if n := len(row.StackIPC); n > 0 {
				ipc += row.StackIPC[n-1]
				nres++
			}
		}
		if nres > 0 {
			ipc /= float64(nres)
		}
		record(fmt.Sprintf("figure11-x%d", sliceBy), f11Start, cycles, ipc)
		emit(fmt.Sprintf("figure11-x%d", sliceBy), pok.RenderFigure11(f11))
		emit(fmt.Sprintf("figure11-x%d-plot", sliceBy), pok.PlotFigure11(f11))
		f12 := pok.Figure12(f11)
		emit(fmt.Sprintf("figure12-x%d", sliceBy), pok.RenderFigure12(f12))
		emit(fmt.Sprintf("figure12-x%d-plot", sliceBy), pok.PlotFigure12(f12))
	}

	if *ablations {
		abStart := time.Now()
		nw, err := pok.NarrowWidthAblation(opt, 2)
		if err != nil {
			fatal(err)
		}
		emit("ablation-narrow", pok.RenderAblation(
			"Ablation: narrow-width operands on bit-slice-x2 (paper §6 future work)",
			"bit-slice-x2", "+narrow", nw))

		pa, err := pok.PredictorAblation(opt)
		if err != nil {
			fatal(err)
		}
		emit("ablation-predictor", pok.RenderAblation(
			"Ablation: bimodal vs gshare direction predictor (base machine)",
			"gshare IPC", "bimodal IPC", pa))

		wp, err := pok.WrongPathAblation(opt, 2)
		if err != nil {
			fatal(err)
		}
		emit("ablation-wrongpath", pok.RenderAblation(
			"Ablation: wrong-path simulation on bit-slice-x2",
			"redirect-only IPC", "+wrong path IPC", wp))

		cs, err := pok.CompiledSuite(opt, 2)
		if err != nil {
			fatal(err)
		}
		emit("compiled-suite", pok.RenderCompiledSuite(cs, 2))

		ws, err := pok.WindowSweep(opt, nil)
		if err != nil {
			fatal(err)
		}
		emit("ablation-window", pok.RenderWindowSweep(ws))

		ls, err := pok.LSQSweep(opt, nil)
		if err != nil {
			fatal(err)
		}
		emit("ablation-lsq", pok.RenderLSQSweep(ls))
		record("ablations", abStart, 0, 0)
	}

	total := time.Since(start)

	if *jsonOut {
		report := benchReport{
			Date:        time.Now().Format("2006-01-02"),
			GoVersion:   runtime.Version(),
			NumCPU:      runtime.NumCPU(),
			InstsBudget: *insts,
			Parallel:    *parallel,
			TotalWallMS: total.Milliseconds(),
			Experiments: records,
		}
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fatal(err)
		}
		dir := *outDir
		if dir == "" {
			dir = "."
		} else if err := os.MkdirAll(dir, 0o755); err != nil {
			fatal(err)
		}
		path := filepath.Join(dir, "BENCH_"+report.Date+".json")
		if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", path)
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fatal(err)
		}
		runtime.GC() // materialize the final live set
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		f.Close()
	}

	fmt.Printf("total wall time: %s\n", total.Round(time.Millisecond))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pok-bench:", err)
	os.Exit(1)
}
