// pok-bench regenerates every table and figure of the paper's evaluation
// section and writes the rendered results to stdout and, optionally, to a
// results directory (one file per experiment).
//
// Usage:
//
//	pok-bench                 # full evaluation at the default budget
//	pok-bench -insts 100000   # quicker pass
//	pok-bench -out results/   # also write per-experiment files
//	pok-bench -emu            # standalone emulator throughput only
//	pok-bench -json           # machine-readable BENCH_<date>.json regression record
//	pok-bench -telemetry      # per-config telemetry summaries (telemetry_<cfg>.json)
//	pok-bench -compare old.json new.json   # regression gate: exit 1 on >25% slowdown
//	pok-bench -submit http://host:8080     # run the sweep as a pok-serve fleet job
//	pok-bench -cpuprofile cpu.out -memprofile mem.out
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"pok"
	"pok/internal/serve"
)

func main() {
	insts := flag.Uint64("insts", 0, "instruction budget per benchmark per run (0 = default)")
	emuOnly := flag.Bool("emu", false, "run only the standalone emulator-throughput experiment")
	ablations := flag.Bool("ablations", false, "also run the ablation studies (narrow-width, predictor, window)")
	outDir := flag.String("out", "", "directory to write per-experiment result files")
	benches := flag.String("bench", "", "comma-separated benchmarks (default: all)")
	parallel := flag.Int("parallel", runtime.NumCPU(), "concurrent benchmarks per experiment")
	jsonOut := flag.Bool("json", false, "write a BENCH_<date>.json regression record (to -out dir, or the working directory)")
	jsonFile := flag.String("json-file", "", "exact path for the -json record (default BENCH_<date>.json; implies -json)")
	telemetryRun := flag.Bool("telemetry", false, "collect per-config pipeline telemetry and write telemetry_<cfg>.json summaries")
	compare := flag.Bool("compare", false, "compare two BENCH json records (args: old.json new.json); exit 1 on regression")
	tolerance := flag.Float64("tolerance", 0, "regression tolerance for -compare as a fraction (0 = default 0.25)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile (after all experiments) to this file")
	submit := flag.String("submit", "", "submit the benchmark sweep to this pok-serve coordinator URL instead of running in-process")
	flag.Parse()

	if *submit != "" {
		runSubmit(*submit, *benches, *insts)
		return
	}

	if *compare {
		if flag.NArg() != 2 {
			fatal(fmt.Errorf("-compare needs exactly two arguments: old.json new.json"))
		}
		runCompare(flag.Arg(0), flag.Arg(1), *tolerance)
		return
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	opt := pok.Options{MaxInsts: *insts, Parallel: *parallel}
	if *benches != "" {
		opt.Benchmarks = strings.Split(*benches, ",")
	}

	emit := func(name, content string) {
		fmt.Println(content)
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				fatal(err)
			}
			path := filepath.Join(*outDir, name+".txt")
			if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
				fatal(err)
			}
		}
	}

	var records []pok.BenchExperiment
	// record captures one experiment's wall time and derived metrics.
	record := func(name string, start time.Time, cycles int64, meanIPC float64) {
		wall := time.Since(start)
		r := pok.BenchExperiment{
			Experiment: name,
			WallMillis: wall.Milliseconds(),
			SimCycles:  cycles,
			MeanIPC:    meanIPC,
		}
		if cycles > 0 && wall > 0 {
			r.SimCyclesPerSec = float64(cycles) / wall.Seconds()
		}
		records = append(records, r)
	}

	// finish writes the optional JSON record and heap profile and prints
	// the total wall time; shared by the full run and the -emu shortcut.
	finish := func(total time.Duration) {
		if *jsonOut || *jsonFile != "" {
			report := pok.BenchReport{
				Date:        time.Now().Format("2006-01-02"),
				GoVersion:   runtime.Version(),
				NumCPU:      runtime.NumCPU(),
				Gomaxprocs:  runtime.GOMAXPROCS(0),
				CPUModel:    cpuModel(),
				GitSHA:      gitSHA(),
				InstsBudget: *insts,
				Parallel:    *parallel,
				TotalWallMS: total.Milliseconds(),
				Experiments: records,
			}
			blob, err := json.MarshalIndent(report, "", "  ")
			if err != nil {
				fatal(err)
			}
			path := *jsonFile
			if path == "" {
				dir := *outDir
				if dir == "" {
					dir = "."
				} else if err := os.MkdirAll(dir, 0o755); err != nil {
					fatal(err)
				}
				path = filepath.Join(dir, "BENCH_"+report.Date+".json")
			}
			if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", path)
		}

		if *memProfile != "" {
			f, err := os.Create(*memProfile)
			if err != nil {
				fatal(err)
			}
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
			f.Close()
		}

		fmt.Printf("total wall time: %s\n", total.Round(time.Millisecond))
	}

	start := time.Now()

	// Functional-emulator throughput first: it is the substrate every
	// other experiment (fast-forward, oracle, soak) runs on, and a
	// standalone record catches fast-path regressions independently of
	// timing-core noise.
	emuStart := time.Now()
	emuRows, err := pok.EmuBench(opt)
	if err != nil {
		fatal(err)
	}
	emuRec := pok.BenchExperiment{
		Experiment: "emu",
		WallMillis: time.Since(emuStart).Milliseconds(),
	}
	if len(emuRows) > 0 {
		emuRec.EmuInstsPerSec = emuRows[0].InstsPerSec // headline: bare mode
	}
	records = append(records, emuRec)
	emit("emu", pok.RenderEmuBench(emuRows))

	if *emuOnly {
		finish(time.Since(start))
		return
	}

	// Checkpointing cost: a disarmed run (the hot loop must not pay for
	// the feature — CI gates this row's throughput against the committed
	// baseline) and a run at an 8-snapshot cadence (drain + capture +
	// encode cost per snapshot).
	ckStart := time.Now()
	ck, err := pok.CkptBench(opt)
	if err != nil {
		fatal(err)
	}
	var ckCycles int64
	for _, r := range ck {
		ckCycles += r.Cycles
	}
	record("ckpt", ckStart, ckCycles, 0)
	emit("ckpt", pok.RenderCkptBench(ck))

	t1Start := time.Now()
	t1, err := pok.Table1(opt)
	if err != nil {
		fatal(err)
	}
	var t1Cycles int64
	var t1IPC float64
	for _, r := range t1 {
		if r.IPC > 0 {
			t1Cycles += int64(float64(r.Insts) / r.IPC)
		}
		t1IPC += r.IPC
	}
	if len(t1) > 0 {
		t1IPC /= float64(len(t1))
	}
	record("table1", t1Start, t1Cycles, t1IPC)
	emit("table1", pok.RenderTable1(t1))

	f2Start := time.Now()
	f2opt := opt
	if len(f2opt.Benchmarks) == 0 {
		f2opt.Benchmarks = []string{"bzip", "gcc"}
	}
	f2, err := pok.Figure2(f2opt)
	if err != nil {
		fatal(err)
	}
	record("figure2", f2Start, 0, 0)
	emit("figure2", pok.RenderFigure2(f2))

	f4Start := time.Now()
	f4opt := opt
	if len(f4opt.Benchmarks) == 0 {
		f4opt.Benchmarks = []string{"mcf", "twolf"}
	}
	f4, err := pok.Figure4(f4opt, nil)
	if err != nil {
		fatal(err)
	}
	record("figure4", f4Start, 0, 0)
	emit("figure4", pok.RenderFigure4(f4))

	f6Start := time.Now()
	f6, err := pok.Figure6(opt)
	if err != nil {
		fatal(err)
	}
	record("figure6", f6Start, 0, 0)
	emit("figure6", pok.RenderFigure6(f6))
	emit("figure6-plot", pok.PlotFigure6(f6))

	for _, sliceBy := range []int{2, 4} {
		f11Start := time.Now()
		f11, err := pok.Figure11(opt, sliceBy)
		if err != nil {
			fatal(err)
		}
		var cycles int64
		var ipc float64
		var nres int
		for _, row := range f11 {
			if row.BaseResult != nil {
				cycles += row.BaseResult.Cycles
			}
			for _, res := range row.Results {
				cycles += res.Cycles
			}
			if n := len(row.StackIPC); n > 0 {
				ipc += row.StackIPC[n-1]
				nres++
			}
		}
		if nres > 0 {
			ipc /= float64(nres)
		}
		record(fmt.Sprintf("figure11-x%d", sliceBy), f11Start, cycles, ipc)
		emit(fmt.Sprintf("figure11-x%d", sliceBy), pok.RenderFigure11(f11))
		emit(fmt.Sprintf("figure11-x%d-plot", sliceBy), pok.PlotFigure11(f11))
		f12 := pok.Figure12(f11)
		emit(fmt.Sprintf("figure12-x%d", sliceBy), pok.RenderFigure12(f12))
		emit(fmt.Sprintf("figure12-x%d-plot", sliceBy), pok.PlotFigure12(f12))

		// Cycle-attribution companion: where each technique's Figure 12
		// delta actually came from (internal/profile CPI stacks).
		csStart := time.Now()
		cs, err := pok.CPIStackReport(opt, sliceBy)
		if err != nil {
			fatal(err)
		}
		var csCycles int64
		for _, row := range cs {
			for _, st := range row.Stacks {
				csCycles += st.Cycles
			}
		}
		record(fmt.Sprintf("cpistack-x%d", sliceBy), csStart, csCycles, 0)
		emit(fmt.Sprintf("cpistack-x%d", sliceBy), pok.RenderCPIStackReport(cs))
	}

	if *ablations {
		abStart := time.Now()
		nw, err := pok.NarrowWidthAblation(opt, 2)
		if err != nil {
			fatal(err)
		}
		emit("ablation-narrow", pok.RenderAblation(
			"Ablation: narrow-width operands on bit-slice-x2 (paper §6 future work)",
			"bit-slice-x2", "+narrow", nw))

		pa, err := pok.PredictorAblation(opt)
		if err != nil {
			fatal(err)
		}
		emit("ablation-predictor", pok.RenderAblation(
			"Ablation: bimodal vs gshare direction predictor (base machine)",
			"gshare IPC", "bimodal IPC", pa))

		wp, err := pok.WrongPathAblation(opt, 2)
		if err != nil {
			fatal(err)
		}
		emit("ablation-wrongpath", pok.RenderAblation(
			"Ablation: wrong-path simulation on bit-slice-x2",
			"redirect-only IPC", "+wrong path IPC", wp))

		cs, err := pok.CompiledSuite(opt, 2)
		if err != nil {
			fatal(err)
		}
		emit("compiled-suite", pok.RenderCompiledSuite(cs, 2))

		ws, err := pok.WindowSweep(opt, nil)
		if err != nil {
			fatal(err)
		}
		emit("ablation-window", pok.RenderWindowSweep(ws))

		ls, err := pok.LSQSweep(opt, nil)
		if err != nil {
			fatal(err)
		}
		emit("ablation-lsq", pok.RenderLSQSweep(ls))
		record("ablations", abStart, 0, 0)
	}

	if *telemetryRun {
		telStart := time.Now()
		if err := runTelemetry(opt, *outDir, emit); err != nil {
			fatal(err)
		}
		record("telemetry", telStart, 0, 0)
	}

	finish(time.Since(start))
}

// runSubmit runs the headline IPC sweep (every benchmark × headline
// config) as a pok-serve fleet job: one cell per benchmark, merged
// rows printed as a benchmark × config IPC table.
func runSubmit(url, benches string, insts uint64) {
	spec := serve.JobSpec{Kind: "bench", Bench: &serve.BenchSpec{
		MaxInsts: insts,
	}}
	if benches != "" {
		spec.Bench.Benchmarks = strings.Split(benches, ",")
	} else {
		spec.Bench.Benchmarks = pok.Benchmarks()
	}
	client := serve.NewClient(url)
	id, err := client.Submit(spec)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "pok-bench: submitted %s (%d benchmarks) to %s\n",
		id, len(spec.Bench.Benchmarks), url)
	res, err := client.Wait(context.Background(), id, 0)
	if err != nil {
		fatal(err)
	}
	// Rows arrive grouped per benchmark cell in submit order; pivot to
	// one line per benchmark with a column per config.
	var configs []string
	ipc := map[string]map[string]float64{}
	for _, row := range res.Bench {
		if ipc[row.Benchmark] == nil {
			ipc[row.Benchmark] = map[string]float64{}
		}
		ipc[row.Benchmark][row.Config] = row.IPC
		seen := false
		for _, c := range configs {
			if c == row.Config {
				seen = true
				break
			}
		}
		if !seen {
			configs = append(configs, row.Config)
		}
	}
	fmt.Printf("%-10s", "benchmark")
	for _, c := range configs {
		fmt.Printf(" %10s", c)
	}
	fmt.Println()
	for _, b := range spec.Bench.Benchmarks {
		byCfg, ok := ipc[b]
		if !ok {
			continue
		}
		fmt.Printf("%-10s", b)
		for _, c := range configs {
			fmt.Printf(" %10.4f", byCfg[c])
		}
		fmt.Println()
	}
}

// runCompare is the CI regression gate: it diffs two -json records and
// exits non-zero when any experiment slowed beyond the tolerance.
func runCompare(oldPath, newPath string, tolerance float64) {
	oldR, err := pok.LoadBenchReport(oldPath)
	if err != nil {
		fatal(err)
	}
	newR, err := pok.LoadBenchReport(newPath)
	if err != nil {
		fatal(err)
	}
	cmp := pok.CompareBenchReports(oldR, newR, tolerance)
	fmt.Print(cmp.Render())
	if cmp.Regressed() {
		os.Exit(1)
	}
}

// runTelemetry runs one benchmark under each headline machine with a
// telemetry recorder attached, prints the per-stage summaries, and
// writes the machine-readable telemetry_<config>.json files CI
// archives alongside the BENCH record.
func runTelemetry(opt pok.Options, outDir string, emit func(name, content string)) error {
	bench := "gzip"
	if len(opt.Benchmarks) > 0 {
		bench = opt.Benchmarks[0]
	}
	insts := opt.MaxInsts
	if insts == 0 {
		insts = 300_000
	}
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
	}
	configs := []pok.Config{pok.BaseConfig(), pok.BitSliced(2), pok.BitSliced(4)}
	var report strings.Builder
	fmt.Fprintf(&report, "Pipeline telemetry: %s, %d insts\n", bench, insts)
	for _, cfg := range configs {
		rec := cfg.NewRecorder(0)
		cfg.Collector = rec
		r, err := pok.SimulateBenchmark(bench, cfg, insts)
		if err != nil {
			return err
		}
		fmt.Fprintf(&report, "\n--- %s (IPC %.4f) ---\n%s", cfg.Name, r.IPC, r.Telemetry.Render())
		if outDir != "" {
			blob, err := json.MarshalIndent(r.Telemetry, "", "  ")
			if err != nil {
				return err
			}
			path := filepath.Join(outDir, "telemetry_"+cfg.Name+".json")
			if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
				return err
			}
		}
	}
	emit("telemetry", report.String())
	return nil
}

// cpuModel reads the CPU model string from /proc/cpuinfo (Linux); the
// report field stays empty on other platforms or on any read error.
func cpuModel() string {
	blob, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(blob), "\n") {
		if k, v, ok := strings.Cut(line, ":"); ok &&
			strings.TrimSpace(k) == "model name" {
			return strings.TrimSpace(v)
		}
	}
	return ""
}

// gitSHA records the source revision the benchmark ran on; empty when
// git (or the repository) is unavailable.
func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pok-bench:", err)
	os.Exit(1)
}
