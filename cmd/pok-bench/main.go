// pok-bench regenerates every table and figure of the paper's evaluation
// section and writes the rendered results to stdout and, optionally, to a
// results directory (one file per experiment).
//
// Usage:
//
//	pok-bench                 # full evaluation at the default budget
//	pok-bench -insts 100000   # quicker pass
//	pok-bench -out results/   # also write per-experiment files
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"pok"
)

func main() {
	insts := flag.Uint64("insts", 0, "instruction budget per benchmark per run (0 = default)")
	ablations := flag.Bool("ablations", false, "also run the ablation studies (narrow-width, predictor, window)")
	outDir := flag.String("out", "", "directory to write per-experiment result files")
	benches := flag.String("bench", "", "comma-separated benchmarks (default: all)")
	parallel := flag.Int("parallel", runtime.NumCPU(), "concurrent benchmarks per experiment")
	flag.Parse()

	opt := pok.Options{MaxInsts: *insts, Parallel: *parallel}
	if *benches != "" {
		opt.Benchmarks = strings.Split(*benches, ",")
	}

	emit := func(name, content string) {
		fmt.Println(content)
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				fatal(err)
			}
			path := filepath.Join(*outDir, name+".txt")
			if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
				fatal(err)
			}
		}
	}

	start := time.Now()

	t1, err := pok.Table1(opt)
	if err != nil {
		fatal(err)
	}
	emit("table1", pok.RenderTable1(t1))

	f2opt := opt
	if len(f2opt.Benchmarks) == 0 {
		f2opt.Benchmarks = []string{"bzip", "gcc"}
	}
	f2, err := pok.Figure2(f2opt)
	if err != nil {
		fatal(err)
	}
	emit("figure2", pok.RenderFigure2(f2))

	f4opt := opt
	if len(f4opt.Benchmarks) == 0 {
		f4opt.Benchmarks = []string{"mcf", "twolf"}
	}
	f4, err := pok.Figure4(f4opt, nil)
	if err != nil {
		fatal(err)
	}
	emit("figure4", pok.RenderFigure4(f4))

	f6, err := pok.Figure6(opt)
	if err != nil {
		fatal(err)
	}
	emit("figure6", pok.RenderFigure6(f6))
	emit("figure6-plot", pok.PlotFigure6(f6))

	for _, sliceBy := range []int{2, 4} {
		f11, err := pok.Figure11(opt, sliceBy)
		if err != nil {
			fatal(err)
		}
		emit(fmt.Sprintf("figure11-x%d", sliceBy), pok.RenderFigure11(f11))
		emit(fmt.Sprintf("figure11-x%d-plot", sliceBy), pok.PlotFigure11(f11))
		f12 := pok.Figure12(f11)
		emit(fmt.Sprintf("figure12-x%d", sliceBy), pok.RenderFigure12(f12))
		emit(fmt.Sprintf("figure12-x%d-plot", sliceBy), pok.PlotFigure12(f12))
	}

	if *ablations {
		nw, err := pok.NarrowWidthAblation(opt, 2)
		if err != nil {
			fatal(err)
		}
		emit("ablation-narrow", pok.RenderAblation(
			"Ablation: narrow-width operands on bit-slice-x2 (paper §6 future work)",
			"bit-slice-x2", "+narrow", nw))

		pa, err := pok.PredictorAblation(opt)
		if err != nil {
			fatal(err)
		}
		emit("ablation-predictor", pok.RenderAblation(
			"Ablation: bimodal vs gshare direction predictor (base machine)",
			"gshare IPC", "bimodal IPC", pa))

		wp, err := pok.WrongPathAblation(opt, 2)
		if err != nil {
			fatal(err)
		}
		emit("ablation-wrongpath", pok.RenderAblation(
			"Ablation: wrong-path simulation on bit-slice-x2",
			"redirect-only IPC", "+wrong path IPC", wp))

		cs, err := pok.CompiledSuite(opt, 2)
		if err != nil {
			fatal(err)
		}
		emit("compiled-suite", pok.RenderCompiledSuite(cs, 2))

		ws, err := pok.WindowSweep(opt, nil)
		if err != nil {
			fatal(err)
		}
		emit("ablation-window", pok.RenderWindowSweep(ws))

		ls, err := pok.LSQSweep(opt, nil)
		if err != nil {
			fatal(err)
		}
		emit("ablation-lsq", pok.RenderLSQSweep(ls))
	}

	fmt.Printf("total wall time: %s\n", time.Since(start).Round(time.Millisecond))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pok-bench:", err)
	os.Exit(1)
}
