// pok-asm assembles a source file and dumps the resulting image: symbols,
// encoded machine words and their disassembly — useful when writing new
// workloads or debugging the encoder.
//
// Usage:
//
//	pok-asm prog.s            # assemble + dump
//	pok-asm -run prog.s       # assemble + execute functionally
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"pok/internal/asm"
	"pok/internal/emu"
	"pok/internal/isa"
)

func main() {
	run := flag.Bool("run", false, "execute the program after assembling")
	maxInsts := flag.Uint64("insts", 50_000_000, "execution instruction cap with -run")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pok-asm [-run] file.s")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := asm.Assemble(string(src))
	if err != nil {
		fatal(err)
	}

	fmt.Printf("entry: 0x%08x\n\nsymbols:\n", prog.Entry)
	type sym struct {
		name string
		addr uint32
	}
	var syms []sym
	for n, a := range prog.Symbols {
		syms = append(syms, sym{n, a})
	}
	sort.Slice(syms, func(i, j int) bool { return syms[i].addr < syms[j].addr })
	for _, s := range syms {
		fmt.Printf("  0x%08x  %s\n", s.addr, s.name)
	}

	for _, seg := range prog.Segments {
		fmt.Printf("\nsegment at 0x%08x (%d bytes):\n", seg.Addr, len(seg.Data))
		if seg.Addr != prog.Entry && seg.Addr >= emu.DefaultDataBase {
			// Data segment: hex dump only.
			for i := 0; i < len(seg.Data); i += 16 {
				end := min(i+16, len(seg.Data))
				fmt.Printf("  0x%08x  %x\n", seg.Addr+uint32(i), seg.Data[i:end])
			}
			continue
		}
		// Text segment: disassemble word by word.
		for i := 0; i+4 <= len(seg.Data); i += 4 {
			w := uint32(seg.Data[i]) | uint32(seg.Data[i+1])<<8 |
				uint32(seg.Data[i+2])<<16 | uint32(seg.Data[i+3])<<24
			in, err := isa.Decode(w)
			text := "??"
			if err == nil {
				text = in.String()
			}
			fmt.Printf("  0x%08x  %08x  %s\n", seg.Addr+uint32(i), w, text)
		}
	}

	if *run {
		e := emu.New(prog)
		n, err := e.Run(*maxInsts, nil)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nexecuted %d instructions, halted=%v exit=%d\noutput: %s\n",
			n, e.Halted(), e.ExitCode(), e.Output())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pok-asm:", err)
	os.Exit(1)
}
