// pok-char runs the paper's trace-driven characterization experiments
// (Table 1 and Figures 2, 4, 6) and prints the resulting tables.
//
// Usage:
//
//	pok-char -exp fig2 -bench bzip,gcc -insts 500000
//	pok-char -exp table1
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pok"
)

func main() {
	expName := flag.String("exp", "table1", "experiment: table1, fig2, fig4, fig6, profile")
	benches := flag.String("bench", "", "comma-separated benchmarks (default: all)")
	insts := flag.Uint64("insts", 0, "instruction budget per benchmark (0 = default)")
	flag.Parse()

	opt := pok.Options{MaxInsts: *insts}
	if *benches != "" {
		opt.Benchmarks = strings.Split(*benches, ",")
	}

	var out string
	var err error
	switch *expName {
	case "table1":
		t1, e := pok.Table1(opt)
		out, err = pok.RenderTable1(t1), e
	case "fig2":
		if len(opt.Benchmarks) == 0 {
			opt.Benchmarks = []string{"bzip", "gcc"} // the paper's Figure 2 pair
		}
		r, e := pok.Figure2(opt)
		out, err = pok.RenderFigure2(r), e
	case "fig4":
		if len(opt.Benchmarks) == 0 {
			opt.Benchmarks = []string{"mcf", "twolf"} // the paper's Figure 4 pair
		}
		r, e := pok.Figure4(opt, nil)
		out, err = pok.RenderFigure4(r), e
	case "fig6":
		r, e := pok.Figure6(opt)
		out, err = pok.RenderFigure6(r)+"\n"+pok.PlotFigure6(r), e
	case "profile":
		names := opt.Benchmarks
		if len(names) == 0 {
			names = pok.Benchmarks()
		}
		budget := opt.MaxInsts
		if budget == 0 {
			budget = 300_000
		}
		var b strings.Builder
		for _, n := range names {
			p, e := pok.ProfileBenchmark(n, budget)
			if e != nil {
				err = e
				break
			}
			fmt.Fprintf(&b, "=== %s ===\n%s\n", n, p)
		}
		out = b.String()
	default:
		err = fmt.Errorf("unknown experiment %q", *expName)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pok-char:", err)
		os.Exit(1)
	}
	fmt.Print(out)
}
