// pok-serve is the distributed-simulation fleet CLI: one binary runs
// the coordinator (HTTP job API + live dashboard), the workers, and
// the submit/status client modes.
//
// Usage:
//
//	pok-serve -listen 127.0.0.1:8080 -lease 10s      # coordinator + dashboard
//	pok-serve -worker -coordinator http://host:8080  # attach a worker
//	pok-serve -submit job.json -coordinator http://host:8080 -wait
//	pok-serve -status -coordinator http://host:8080  # one-shot fleet snapshot
//
// Jobs are JSON JobSpecs (see internal/serve); existing campaigns
// submit themselves with `pok-soak -submit` / `pok-bench -submit`
// without a spec file. The dashboard at / renders the job wavefront,
// per-worker throughput and the deduped findings feed, and is
// self-contained — `curl http://host:8080/ -o dashboard.html` archives
// a snapshot.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pok/internal/serve"
)

func main() {
	listen := flag.String("listen", "", "coordinator mode: address to serve the HTTP API + dashboard on (e.g. 127.0.0.1:8080)")
	lease := flag.Duration("lease", 10*time.Second, "coordinator: lease TTL before a silent worker's cell is requeued")
	worker := flag.Bool("worker", false, "worker mode: pull and execute cells")
	coordinator := flag.String("coordinator", "", "coordinator URL for -worker/-submit/-status")
	name := flag.String("name", "", "worker name (default worker-<pid>)")
	out := flag.String("out", "fleet-worker-out", "worker: output directory for repro bundles")
	poll := flag.Duration("poll", 500*time.Millisecond, "worker: idle-queue poll interval / submit: status poll interval")
	maxCells := flag.Int("max-cells", 0, "worker: exit after this many cells (0 = run forever)")
	submit := flag.String("submit", "", "submit mode: path to a JobSpec JSON file (- for stdin)")
	wait := flag.Bool("wait", true, "submit: wait for the job and print its result")
	status := flag.Bool("status", false, "status mode: print the fleet snapshot and exit")
	quiet := flag.Bool("q", false, "suppress per-cell progress lines")
	flag.Parse()

	switch {
	case *listen != "":
		runCoordinator(*listen, *lease)
	case *worker:
		runWorker(*coordinator, *name, *out, *poll, *maxCells, *quiet)
	case *submit != "":
		runSubmit(*coordinator, *submit, *wait, *poll)
	case *status:
		runStatus(*coordinator)
	default:
		fatal(fmt.Errorf("pick a mode: -listen (coordinator), -worker, -submit or -status"))
	}
}

func runCoordinator(addr string, lease time.Duration) {
	coord := serve.NewCoordinator(lease)
	srv := &http.Server{Addr: addr, Handler: coord.Handler()}
	fmt.Fprintf(os.Stderr, "pok-serve: coordinator on http://%s (lease %s)\n", addr, lease)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fatal(err)
	}
}

func runWorker(coordinator, name, out string, poll time.Duration, maxCells int, quiet bool) {
	if coordinator == "" {
		fatal(fmt.Errorf("-worker needs -coordinator URL"))
	}
	if name == "" {
		name = fmt.Sprintf("worker-%d", os.Getpid())
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		fatal(err)
	}
	ctx, cancel := signal.NotifyContext(context.Background(),
		os.Interrupt, syscall.SIGTERM)
	defer cancel()
	w := &serve.Worker{
		Client:   serve.NewClient(coordinator),
		Name:     name,
		OutDir:   out,
		Poll:     poll,
		MaxCells: maxCells,
	}
	if !quiet {
		w.Log = os.Stderr
	}
	if err := w.Run(ctx); err != nil {
		fatal(err)
	}
}

func runSubmit(coordinator, specPath string, wait bool, poll time.Duration) {
	if coordinator == "" {
		fatal(fmt.Errorf("-submit needs -coordinator URL"))
	}
	var blob []byte
	var err error
	if specPath == "-" {
		blob, err = os.ReadFile("/dev/stdin")
	} else {
		blob, err = os.ReadFile(specPath)
	}
	if err != nil {
		fatal(err)
	}
	var spec serve.JobSpec
	if err := json.Unmarshal(blob, &spec); err != nil {
		fatal(fmt.Errorf("spec %s: %w", specPath, err))
	}
	client := serve.NewClient(coordinator)
	id, err := client.Submit(spec)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("submitted %s\n", id)
	if !wait {
		return
	}
	res, err := client.Wait(context.Background(), id, poll)
	if err != nil {
		fatal(err)
	}
	outBlob, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		fatal(err)
	}
	fmt.Println(string(outBlob))
	if res.Soak != nil && len(res.Soak.Findings) > 0 {
		os.Exit(1)
	}
}

func runStatus(coordinator string) {
	if coordinator == "" {
		fatal(fmt.Errorf("-status needs -coordinator URL"))
	}
	st, err := serve.NewClient(coordinator).Status()
	if err != nil {
		fatal(err)
	}
	blob, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		fatal(err)
	}
	fmt.Println(string(blob))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pok-serve:", err)
	os.Exit(1)
}
