// pok-serve is the distributed-simulation fleet CLI: one binary runs
// the coordinator (HTTP job API + live dashboard), the workers, and
// the submit/status client modes.
//
// Usage:
//
//	pok-serve -listen 127.0.0.1:8080 -lease 10s      # coordinator + dashboard
//	pok-serve -listen 127.0.0.1:8080 -journal dir    # crash-safe coordinator
//	pok-serve -worker -coordinator http://host:8080  # attach a worker
//	pok-serve -submit job.json -coordinator http://host:8080 -wait
//	pok-serve -status -coordinator http://host:8080  # one-shot fleet snapshot
//
// With -journal the coordinator appends every state transition to a
// write-ahead journal and replays it on startup, so a crashed (even
// SIGKILLed) coordinator restarts with its jobs, queue and live leases
// intact — workers reconnect through their existing lease IDs and the
// campaign resumes where the journal left it. SIGTERM drains
// gracefully: leasing stops, in-flight leases run to completion (or
// TTL expiry), a clean-shutdown marker is journaled, and the HTTP
// server shuts down.
//
// Jobs are JSON JobSpecs (see internal/serve); existing campaigns
// submit themselves with `pok-soak -submit` / `pok-bench -submit`
// without a spec file. The dashboard at / renders the job wavefront,
// per-worker throughput, streaming CPI-stack bars and the deduped
// findings feed, and is self-contained — `curl http://host:8080/ -o
// dashboard.html` archives a snapshot. The coordinator also serves
// Prometheus-text metrics at /metrics (scrapeable with a stock
// scrape_config, no extra deps) and the same aggregates as JSON at
// /api/metrics.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pok/internal/metrics"
	"pok/internal/serve"
)

func main() {
	listen := flag.String("listen", "", "coordinator mode: address to serve the HTTP API + dashboard on (e.g. 127.0.0.1:8080)")
	lease := flag.Duration("lease", 10*time.Second, "coordinator: lease TTL before a silent worker's cell is requeued")
	journal := flag.String("journal", "", "coordinator: write-ahead journal directory; replayed on startup to recover state after a crash")
	drain := flag.Duration("drain", 30*time.Second, "coordinator: max time to wait for in-flight leases on SIGTERM before shutting down anyway")
	worker := flag.Bool("worker", false, "worker mode: pull and execute cells")
	coordinator := flag.String("coordinator", "", "coordinator URL for -worker/-submit/-status")
	name := flag.String("name", "", "worker name (default worker-<pid>)")
	out := flag.String("out", "fleet-worker-out", "worker: output directory for repro bundles")
	poll := flag.Duration("poll", 500*time.Millisecond, "worker: idle-queue poll interval / submit: status poll interval")
	maxCells := flag.Int("max-cells", 0, "worker: exit after this many cells (0 = run forever)")
	outage := flag.Duration("outage", 2*time.Minute, "worker: how long the coordinator may stay unreachable before the worker gives up and exits nonzero")
	chaos := flag.String("chaos", "", "worker: fault-injection spec for the coordinator transport, e.g. drop=0.05,dup=0.02,err=0.05,delay=0.1,maxdelay=80ms (testing)")
	chaosSeed := flag.Uint64("chaos-seed", 1, "worker: seed for -chaos fault pattern")
	submit := flag.String("submit", "", "submit mode: path to a JobSpec JSON file (- for stdin)")
	wait := flag.Bool("wait", true, "submit: wait for the job and print its result")
	status := flag.Bool("status", false, "status mode: print the fleet snapshot and exit")
	withMetrics := flag.Bool("metrics", true, "worker: fold per-run telemetry into heartbeat snapshots for the coordinator's /metrics endpoint (never changes findings)")
	quiet := flag.Bool("q", false, "suppress per-cell progress lines")
	flag.Parse()

	switch {
	case *listen != "":
		runCoordinator(*listen, *lease, *journal, *drain)
	case *worker:
		runWorker(*coordinator, *name, *out, *poll, *maxCells, *outage,
			*chaos, *chaosSeed, *withMetrics, *quiet)
	case *submit != "":
		runSubmit(*coordinator, *submit, *wait, *poll)
	case *status:
		runStatus(*coordinator)
	default:
		fatal(fmt.Errorf("pick a mode: -listen (coordinator), -worker, -submit or -status"))
	}
}

func runCoordinator(addr string, lease time.Duration, journalDir string, drainTimeout time.Duration) {
	coord := serve.NewCoordinator(lease)
	build := metrics.DetectBuild()
	coord.SetBuild(build)
	if journalDir != "" {
		j, err := serve.OpenJournal(journalDir)
		if err != nil {
			fatal(err)
		}
		stats, err := coord.AttachJournal(j)
		if err != nil {
			fatal(err)
		}
		if stats.Records > 0 {
			fmt.Fprintf(os.Stderr,
				"pok-serve: recovered %d journal records: %d jobs, %d pending cells, %d live leases%s\n",
				stats.Records, stats.Jobs, stats.PendingCells, stats.LiveLeases,
				map[bool]string{true: " (clean shutdown)", false: ""}[stats.CleanShutdown])
		}
	}
	srv := &http.Server{
		Addr:    addr,
		Handler: coord.Handler(),
		// Slowloris / stuck-peer hardening: every API body is a small
		// JSON blob, so generous-but-finite deadlines cost nothing.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		IdleTimeout:       5 * time.Minute,
	}
	ctx, cancel := signal.NotifyContext(context.Background(),
		os.Interrupt, syscall.SIGTERM)
	defer cancel()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "pok-serve: coordinator on http://%s (lease %s, %s)\n",
		addr, lease, build)
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	case <-ctx.Done():
		// Graceful drain: stop leasing, keep serving status/heartbeats
		// until in-flight leases complete or TTL-expire, then shut the
		// HTTP server down.
		fmt.Fprintf(os.Stderr, "pok-serve: draining (waiting up to %s for in-flight leases)\n", drainTimeout)
		dctx, dcancel := context.WithTimeout(context.Background(), drainTimeout)
		if err := coord.Drain(dctx); err != nil {
			fmt.Fprintf(os.Stderr, "pok-serve: drain incomplete: %v\n", err)
		}
		dcancel()
		sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer scancel()
		if err := srv.Shutdown(sctx); err != nil {
			fmt.Fprintf(os.Stderr, "pok-serve: shutdown: %v\n", err)
		}
		fmt.Fprintln(os.Stderr, "pok-serve: coordinator stopped")
	}
}

func runWorker(coordinator, name, out string, poll time.Duration, maxCells int,
	outage time.Duration, chaosSpec string, chaosSeed uint64, withMetrics, quiet bool) {
	if coordinator == "" {
		fatal(fmt.Errorf("-worker needs -coordinator URL"))
	}
	if name == "" {
		name = fmt.Sprintf("worker-%d", os.Getpid())
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		fatal(err)
	}
	ctx, cancel := signal.NotifyContext(context.Background(),
		os.Interrupt, syscall.SIGTERM)
	defer cancel()
	client := serve.NewClient(coordinator)
	if chaosSpec != "" {
		ct, err := serve.ParseChaosSpec(chaosSpec)
		if err != nil {
			fatal(err)
		}
		if ct != nil {
			ct.Seed = chaosSeed
			client.HTTP = &http.Client{Transport: ct, Timeout: 30 * time.Second}
			fmt.Fprintf(os.Stderr, "pok-serve: %s: chaos transport enabled (%s, seed %d)\n",
				name, chaosSpec, chaosSeed)
		}
	}
	w := &serve.Worker{
		Client:       client,
		Name:         name,
		OutDir:       out,
		Poll:         poll,
		MaxCells:     maxCells,
		OutageBudget: outage,
		NoMetrics:    !withMetrics,
	}
	if !quiet {
		w.Log = os.Stderr
	}
	if err := w.Run(ctx); err != nil {
		fatal(err)
	}
}

func runSubmit(coordinator, specPath string, wait bool, poll time.Duration) {
	if coordinator == "" {
		fatal(fmt.Errorf("-submit needs -coordinator URL"))
	}
	var blob []byte
	var err error
	if specPath == "-" {
		blob, err = os.ReadFile("/dev/stdin")
	} else {
		blob, err = os.ReadFile(specPath)
	}
	if err != nil {
		fatal(err)
	}
	var spec serve.JobSpec
	if err := json.Unmarshal(blob, &spec); err != nil {
		fatal(fmt.Errorf("spec %s: %w", specPath, err))
	}
	client := serve.NewClient(coordinator)
	id, err := client.Submit(spec)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("submitted %s\n", id)
	if !wait {
		return
	}
	res, err := client.Wait(context.Background(), id, poll)
	if err != nil {
		fatal(err)
	}
	outBlob, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		fatal(err)
	}
	fmt.Println(string(outBlob))
	if res.Soak != nil && len(res.Soak.Findings) > 0 {
		os.Exit(1)
	}
}

func runStatus(coordinator string) {
	if coordinator == "" {
		fatal(fmt.Errorf("-status needs -coordinator URL"))
	}
	st, err := serve.NewClient(coordinator).Status()
	if err != nil {
		fatal(err)
	}
	blob, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		fatal(err)
	}
	fmt.Println(string(blob))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pok-serve:", err)
	os.Exit(1)
}
