// pok-sim runs one benchmark (or an assembly file) through the timing
// model under a chosen machine configuration and prints its statistics.
//
// Usage:
//
//	pok-sim -bench gzip -config slice2 -insts 300000
//	pok-sim -asm prog.s -config simple4 -trace
//	pok-sim -bench gcc -config slice4 -telemetry -events dump.jsonl
//	pok-sim -bench gzip -config slice4 -prof
//
// -telemetry prints the per-stage occupancy/stall summary after the
// run; -events writes the structured pipeline event stream as JSONL
// with a self-describing meta header (render it with pok-trace,
// analyse it with pok-prof); -prof chains the cycle-accounting
// profiler onto the recorder and prints the run's CPI stack.
//
// Long runs are crash-safe: -ckpt-every drains the pipeline every N
// committed instructions and writes a verified architectural snapshot
// (delta chain with periodic full rebases) to -ckpt-dir; -resume
// continues from any snapshot, bit-identical to an uninterrupted run
// of the same cadence. SIGINT/SIGTERM, -deadline and -max-heap-mb all
// request the same graceful drain: a final snapshot (when a sink is
// armed) plus a partial Result instead of lost work.
//
//	pok-sim -bench gzip -config slice4 -insts 2000000 -ckpt-every 500000
//	pok-sim -resume pok-ckpt/ckpt-000000000003.pok -config slice4
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pok"
	"pok/internal/ckpt"
	"pok/internal/core"
)

func configByName(name string) (pok.Config, error) {
	switch name {
	case "base", "ideal":
		return pok.BaseConfig(), nil
	case "simple2":
		return pok.SimplePipelined(2), nil
	case "simple4":
		return pok.SimplePipelined(4), nil
	case "slice2", "bitslice2":
		return pok.BitSliced(2), nil
	case "slice4", "bitslice4":
		return pok.BitSliced(4), nil
	}
	return pok.Config{}, fmt.Errorf("unknown config %q (base, simple2, simple4, slice2, slice4)", name)
}

func main() {
	bench := flag.String("bench", "", "benchmark name (see -list)")
	asmFile := flag.String("asm", "", "assembly source file to simulate instead of a benchmark")
	cfgName := flag.String("config", "base", "machine config: base, simple2, simple4, slice2, slice4")
	insts := flag.Uint64("insts", 300_000, "instruction budget (0 = run to completion)")
	trace := flag.Bool("trace", false, "emit a pipeline event trace to stderr")
	telemetry := flag.Bool("telemetry", false, "collect structured telemetry and print the per-stage summary")
	events := flag.String("events", "", "write the telemetry event stream to this JSONL file (implies -telemetry)")
	ringCap := flag.Int("events-cap", 0, "event ring capacity (0 = default; oldest events drop beyond it)")
	prof := flag.Bool("prof", false, "chain the cycle-accounting profiler and print the CPI stack")
	list := flag.Bool("list", false, "list benchmarks and exit")
	ckptEvery := flag.Uint64("ckpt-every", 0, "architectural checkpoint cadence in committed instructions (0 = off)")
	ckptDir := flag.String("ckpt-dir", "pok-ckpt", "snapshot directory for checkpointing (delta chain with periodic full rebases)")
	resumeFile := flag.String("resume", "", "resume from this snapshot file (chain-resolved; -config must match the checkpointed run)")
	deadline := flag.Duration("deadline", 0, "wall-clock budget; on expiry the run drains, snapshots and exits with a partial result")
	maxHeap := flag.Uint64("max-heap-mb", 0, "live-heap budget in MiB; on excess the run drains, snapshots and exits with a partial result")
	flag.Parse()

	if *list {
		for _, n := range pok.Benchmarks() {
			w, _ := pok.GetWorkload(n)
			fmt.Printf("%-8s %-28s %s\n", n, w.Paper, w.Description)
		}
		return
	}

	cfg, err := configByName(*cfgName)
	if err != nil {
		fatal(err)
	}
	if *trace {
		cfg.Trace = os.Stderr
	}
	var rec *pok.TelemetryRecorder
	if *telemetry || *events != "" || *prof {
		rec = cfg.NewRecorder(*ringCap)
		cfg.Collector = rec
	}
	var lc *pok.ProfileCollector
	if *prof {
		// The profiler chains in front of the recorder: the recorder
		// sees the identical stream, and the profiler's unbounded copy
		// guarantees a lossless dump for -events.
		lc = pok.NewProfileCollector(rec)
		lc.Benchmark, lc.Config = *bench, *cfgName
		cfg.Collector = lc
	}

	// Build the simulation by hand (rather than through the pok.Run
	// facade) so checkpoint sinks, watchdogs and the signal handler can
	// all reach the live Sim. The constructed run is identical to the
	// facade's: same config, same warmup, same budget.
	var sim *core.Sim
	benchName := *bench
	switch {
	case *resumeFile != "":
		snap, lerr := ckpt.LoadChain(*resumeFile)
		if lerr != nil {
			fatal(lerr)
		}
		sim, err = core.NewSimFromSnapshot(snap, cfg, *insts)
		if err != nil {
			fatal(err)
		}
		benchName = snap.Meta.Benchmark
		fmt.Fprintf(os.Stderr, "pok-sim: resumed %s at %d insts from %s\n",
			benchName, snap.Meta.Insts, *resumeFile)
	case *asmFile != "":
		src, rerr := os.ReadFile(*asmFile)
		if rerr != nil {
			fatal(rerr)
		}
		prog, aerr := pok.Assemble(string(src))
		if aerr != nil {
			fatal(aerr)
		}
		sim, err = core.NewSim(prog, cfg, *insts)
		if err != nil {
			fatal(err)
		}
	case *bench != "":
		w, gerr := pok.GetWorkload(*bench)
		if gerr != nil {
			fatal(gerr)
		}
		prog, perr := w.Program(w.DefaultScale)
		if perr != nil {
			fatal(perr)
		}
		sim, err = core.NewSim(prog, cfg, *insts)
		if err != nil {
			fatal(err)
		}
		if w.FastForward > 0 {
			if err := sim.FastForward(w.FastForward); err != nil {
				fatal(err)
			}
		}
	default:
		fatal(fmt.Errorf("need -bench, -asm or -resume (try -list)"))
	}

	// A snapshot sink is armed whenever any crash-safety flag is in
	// play: periodic with -ckpt-every, final-snapshot-only otherwise
	// (a drain-stop always lands one snapshot at its boundary).
	var wr *ckpt.Writer
	if *ckptEvery > 0 || *resumeFile != "" || *deadline > 0 || *maxHeap > 0 {
		if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
			fatal(err)
		}
		wr = &ckpt.Writer{Dir: *ckptDir}
		sim.SetCheckpoint(*ckptEvery, wr, benchName)
	}

	// First SIGINT/SIGTERM drains gracefully; a second one kills.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sigCh
		sim.RequestStop(fmt.Sprintf("signal %v", s))
		signal.Stop(sigCh)
	}()
	wd := &ckpt.Watchdog{Stop: sim.RequestStop}
	if *deadline > 0 {
		wd.Deadline = time.Now().Add(*deadline)
	}
	if *maxHeap > 0 {
		wd.MaxHeapBytes = *maxHeap << 20
	}
	cancelWd := wd.Start()

	r, err := sim.Run()
	cancelWd()
	if err != nil {
		fatal(err)
	}
	r.Benchmark = benchName

	printResult(r)
	if r.Stopped {
		fmt.Printf("\nstopped early: %s (%d insts committed)\n", r.StopReason, r.Insts)
	}
	if wr != nil && wr.Count() > 0 {
		fmt.Printf("wrote %d snapshot(s) to %s; resume with -resume %s\n",
			wr.Count(), *ckptDir, wr.LastPath())
	}
	if r.Telemetry != nil && (*telemetry || *events != "") {
		fmt.Println()
		fmt.Print(r.Telemetry.Render())
	}
	if lc != nil {
		st, err := lc.Stack()
		if err != nil {
			fatal(err)
		}
		fmt.Println()
		fmt.Print(st.Render())
	}
	if *events != "" && rec != nil {
		evs := rec.Events()
		dropped := rec.Dropped()
		if lc != nil {
			evs, dropped = lc.Events(), 0 // profiler copy is lossless
		}
		meta := &pok.EventDumpMeta{
			Benchmark: r.Benchmark, Config: *cfgName,
			Insts: r.Insts, Cycles: r.Cycles, Dropped: dropped,
		}
		f, err := os.Create(*events)
		if err != nil {
			fatal(err)
		}
		if err := pok.WriteEventsDump(f, meta, evs); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d events to %s (render with pok-trace, analyse with pok-prof)\n", len(evs), *events)
	}
}

func printResult(r *pok.Result) {
	fmt.Print(r.Summary())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pok-sim:", err)
	os.Exit(1)
}
