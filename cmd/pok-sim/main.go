// pok-sim runs one benchmark (or an assembly file) through the timing
// model under a chosen machine configuration and prints its statistics.
//
// Usage:
//
//	pok-sim -bench gzip -config slice2 -insts 300000
//	pok-sim -asm prog.s -config simple4 -trace
//	pok-sim -bench gcc -config slice4 -telemetry -events dump.jsonl
//	pok-sim -bench gzip -config slice4 -prof
//
// -telemetry prints the per-stage occupancy/stall summary after the
// run; -events writes the structured pipeline event stream as JSONL
// with a self-describing meta header (render it with pok-trace,
// analyse it with pok-prof); -prof chains the cycle-accounting
// profiler onto the recorder and prints the run's CPI stack.
package main

import (
	"flag"
	"fmt"
	"os"

	"pok"
)

func configByName(name string) (pok.Config, error) {
	switch name {
	case "base", "ideal":
		return pok.BaseConfig(), nil
	case "simple2":
		return pok.SimplePipelined(2), nil
	case "simple4":
		return pok.SimplePipelined(4), nil
	case "slice2", "bitslice2":
		return pok.BitSliced(2), nil
	case "slice4", "bitslice4":
		return pok.BitSliced(4), nil
	}
	return pok.Config{}, fmt.Errorf("unknown config %q (base, simple2, simple4, slice2, slice4)", name)
}

func main() {
	bench := flag.String("bench", "", "benchmark name (see -list)")
	asmFile := flag.String("asm", "", "assembly source file to simulate instead of a benchmark")
	cfgName := flag.String("config", "base", "machine config: base, simple2, simple4, slice2, slice4")
	insts := flag.Uint64("insts", 300_000, "instruction budget (0 = run to completion)")
	trace := flag.Bool("trace", false, "emit a pipeline event trace to stderr")
	telemetry := flag.Bool("telemetry", false, "collect structured telemetry and print the per-stage summary")
	events := flag.String("events", "", "write the telemetry event stream to this JSONL file (implies -telemetry)")
	ringCap := flag.Int("events-cap", 0, "event ring capacity (0 = default; oldest events drop beyond it)")
	prof := flag.Bool("prof", false, "chain the cycle-accounting profiler and print the CPI stack")
	list := flag.Bool("list", false, "list benchmarks and exit")
	flag.Parse()

	if *list {
		for _, n := range pok.Benchmarks() {
			w, _ := pok.GetWorkload(n)
			fmt.Printf("%-8s %-28s %s\n", n, w.Paper, w.Description)
		}
		return
	}

	cfg, err := configByName(*cfgName)
	if err != nil {
		fatal(err)
	}
	if *trace {
		cfg.Trace = os.Stderr
	}
	var rec *pok.TelemetryRecorder
	if *telemetry || *events != "" || *prof {
		rec = cfg.NewRecorder(*ringCap)
		cfg.Collector = rec
	}
	var lc *pok.ProfileCollector
	if *prof {
		// The profiler chains in front of the recorder: the recorder
		// sees the identical stream, and the profiler's unbounded copy
		// guarantees a lossless dump for -events.
		lc = pok.NewProfileCollector(rec)
		lc.Benchmark, lc.Config = *bench, *cfgName
		cfg.Collector = lc
	}

	var r *pok.Result
	switch {
	case *asmFile != "":
		src, err := os.ReadFile(*asmFile)
		if err != nil {
			fatal(err)
		}
		prog, err := pok.Assemble(string(src))
		if err != nil {
			fatal(err)
		}
		r, err = pok.Run(prog, cfg, *insts)
		if err != nil {
			fatal(err)
		}
	case *bench != "":
		r, err = pok.SimulateBenchmark(*bench, cfg, *insts)
		if err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("need -bench or -asm (try -list)"))
	}

	printResult(r)
	if r.Telemetry != nil && (*telemetry || *events != "") {
		fmt.Println()
		fmt.Print(r.Telemetry.Render())
	}
	if lc != nil {
		st, err := lc.Stack()
		if err != nil {
			fatal(err)
		}
		fmt.Println()
		fmt.Print(st.Render())
	}
	if *events != "" && rec != nil {
		evs := rec.Events()
		dropped := rec.Dropped()
		if lc != nil {
			evs, dropped = lc.Events(), 0 // profiler copy is lossless
		}
		meta := &pok.EventDumpMeta{
			Benchmark: r.Benchmark, Config: *cfgName,
			Insts: r.Insts, Cycles: r.Cycles, Dropped: dropped,
		}
		f, err := os.Create(*events)
		if err != nil {
			fatal(err)
		}
		if err := pok.WriteEventsDump(f, meta, evs); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d events to %s (render with pok-trace, analyse with pok-prof)\n", len(evs), *events)
	}
}

func printResult(r *pok.Result) {
	fmt.Print(r.Summary())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pok-sim:", err)
	os.Exit(1)
}
