module pok

go 1.22
