# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test test-race vet bench ci check fuzz-smoke soak soak-smoke fleet-smoke chaos-smoke ckpt-smoke eval eval-quick examples clean

all: build test

# The full pre-merge gate: static checks (vet plus the failing gofmt
# gate), a clean build, and the test suite under the race detector (the
# experiment drivers fan simulations out over goroutines, so racy
# scheduling code cannot hide).
ci: vet
	$(GO) build ./...
	$(GO) test -race ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Quick race-detector pass: short mode trims the heavyweight
# differential sweeps so this finishes in a couple of minutes, giving
# fast feedback on data races before the full `make ci` race run.
test-race:
	$(GO) test -race -short ./...

# vet exits non-zero when gofmt would rewrite any file, instead of
# merely listing offenders; `make ci` (and the GitHub workflow) run it.
vet:
	$(GO) vet ./...
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt: unformatted files:"; \
		echo "$$unformatted"; \
		exit 1; \
	fi

# Checked runs: every workload against the lockstep oracle, the
# invariant checker and the deadlock watchdog, on both schedulers, with
# a seeded fault-injection campaign the machine must recover from —
# then one deliberate corruption and one wedge to prove the detectors
# themselves fire (those two runs MUST fail).
check:
	$(GO) run ./cmd/pok-check -all -insts 30000 -inject -seed 1 -min-faults 100
	@if $(GO) run ./cmd/pok-check -bench li -corrupt 1000 >/dev/null 2>&1; then \
		echo "check: seeded corruption went undetected"; exit 1; fi
	@if $(GO) run ./cmd/pok-check -bench li -wedge 500 -deadlock-budget 2000 >/dev/null 2>&1; then \
		echo "check: wedged pipeline went undetected"; exit 1; fi
	@echo "check: divergence + deadlock detectors verified"

# Short native-fuzzing smoke for the assembler and the emulator (the
# checked-in corpora under internal/*/testdata/fuzz run on every plain
# `go test` as regression inputs).
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzAssemble -fuzztime 30s ./internal/asm
	$(GO) test -run '^$$' -fuzz FuzzEmuStep -fuzztime 30s ./internal/emu

# Random-program differential soak (internal/gen + internal/soak).
# soak-smoke is the PR gate: a 15-second time-boxed campaign on the
# bit-sliced configs. soak is the nightly shape: 90s per base seed,
# three seeds, plus one fault-injection campaign per cell. Both exit
# non-zero on any finding, each arriving pre-minimized as a repro
# bundle under soak-out/repros/.
soak-smoke:
	$(GO) run ./cmd/pok-soak -duration 15s -seed 1 -configs slice2,slice4 \
		-scheduler both -out soak-out -q

soak:
	$(GO) run ./cmd/pok-soak -duration 90s -seeds 3 -inject-seeds 1 \
		-out soak-out

# Distributed-fleet smoke (cmd/pok-serve): coordinator + two workers,
# a short seeded-fault soak submitted over HTTP, one worker killed
# mid-run. Passes only if the job completes via lease-expiry requeue
# AND the merged findings are byte-identical to a single-process run.
fleet-smoke:
	bash scripts/fleet_smoke.sh

# Crash-safety smoke (scripts/chaos_smoke.sh): the same campaign with
# the coordinator journaled, both workers behind a seeded
# fault-injecting transport, and the coordinator SIGKILLed and
# restarted from its journal mid-run. Passes only if the restarted
# coordinator reports journal recovery AND the merged findings stay
# byte-identical to the single-process run.
chaos-smoke:
	bash scripts/chaos_smoke.sh

# Checkpoint/resume smoke (scripts/ckpt_smoke.sh): a ~2M-instruction
# pok-sim run with periodic architectural checkpoints is SIGKILLed at
# a random snapshot, resumed from the surviving delta chain, and must
# finish byte-identical to an uninterrupted run of the same cadence.
ckpt-smoke:
	bash scripts/ckpt_smoke.sh

# Reduced-budget benchmark versions of every table/figure plus the
# substrate micro-benchmarks, then a quick-budget pok-bench pass that
# refreshes the repo-root BENCH_PR10.json regression record (the CI
# smoke gate compares against the newest committed BENCH_*.json via
# sort -V, so the emulator-throughput `emu` and checkpointing-cost
# `ckpt` experiments are gated too).
bench:
	$(GO) test -bench=. -benchmem ./...
	$(GO) run ./cmd/pok-bench -json-file BENCH_PR10.json -insts 20000

# Regenerate the paper's full evaluation into results/.
eval:
	$(GO) run ./cmd/pok-bench -out results -ablations

eval-quick:
	$(GO) run ./cmd/pok-bench -out results -insts 60000

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/characterize
	$(GO) run ./examples/slicecompare gzip
	$(GO) run ./examples/customprog
	$(GO) run ./examples/sampling gcc
	$(GO) run ./examples/minic

clean:
	rm -rf results test_output.txt bench_output.txt soak-out fleet-out chaos-out ckpt-out pok-ckpt
