# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test vet bench ci eval eval-quick examples clean

all: build test

# The full pre-merge gate: static checks (vet plus the failing gofmt
# gate), a clean build, and the test suite under the race detector (the
# experiment drivers fan simulations out over goroutines, so racy
# scheduling code cannot hide).
ci: vet
	$(GO) build ./...
	$(GO) test -race ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# vet exits non-zero when gofmt would rewrite any file, instead of
# merely listing offenders; `make ci` (and the GitHub workflow) run it.
vet:
	$(GO) vet ./...
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt: unformatted files:"; \
		echo "$$unformatted"; \
		exit 1; \
	fi

# Reduced-budget benchmark versions of every table/figure plus the
# substrate micro-benchmarks.
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the paper's full evaluation into results/.
eval:
	$(GO) run ./cmd/pok-bench -out results -ablations

eval-quick:
	$(GO) run ./cmd/pok-bench -out results -insts 60000

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/characterize
	$(GO) run ./examples/slicecompare gzip
	$(GO) run ./examples/customprog
	$(GO) run ./examples/sampling gcc
	$(GO) run ./examples/minic

clean:
	rm -rf results test_output.txt bench_output.txt
