#!/usr/bin/env bash
# Fleet smoke: the CI gate for the pok-serve distributed-simulation
# fleet. It boots a coordinator and two workers, submits a short soak
# campaign with a seeded corruption (so every program is a finding),
# kills one worker mid-run, and requires that
#
#   (a) the job still completes — the dead worker's cell is requeued
#       after its lease expires and finished by the survivor, and
#   (b) the merged findings report is byte-identical to a
#       single-process run of the same campaign.
#
# Artifacts land under $OUT (default fleet-out): the solo and fleet
# findings JSON, repro bundles, coordinator/worker logs, a
# dashboard.html + status.json snapshot of the coordinator UI, and a
# mid-campaign metrics.prom Prometheus scrape that must carry the
# per-job CPI-stack, worker-throughput and RPC-health series.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${OUT:-fleet-out}"
PORT="${PORT:-18923}"
URL="http://127.0.0.1:$PORT"
# The seeded corruption (-corrupt 20) makes every program diverge, so
# the byte-identical diff below compares non-trivial findings.
# -inst-ckpt arms instruction-granular checkpoints inside every
# detection run; checkpoint cadence is coverage-affecting, so the solo
# reference and the fleet job MUST share it for the diff to hold. With
# it armed, the killed worker's heartbeats carry a mid-program resume
# cursor, so the requeue below exercises instruction-granular resume.
SOAK_FLAGS=(-programs 6 -seed 7 -configs slice2 -scheduler event
            -fragments 6 -loop-iters 2 -gen-insts 2000 -corrupt 20
            -reduce-tests 64 -inst-ckpt 10 -q)

rm -rf "$OUT"
mkdir -p "$OUT/solo" "$OUT/fleet" "$OUT/clean" "$OUT/worker-1" "$OUT/worker-2"

# RACE=1 builds both binaries with the race detector so the whole
# fleet protocol runs under it end to end.
go build ${RACE:+-race} -o "$OUT/pok-serve" ./cmd/pok-serve
go build ${RACE:+-race} -o "$OUT/pok-soak" ./cmd/pok-soak

pids=()
cleanup() {
  kill "${pids[@]}" 2>/dev/null || true
}
trap cleanup EXIT

"$OUT/pok-serve" -listen "127.0.0.1:$PORT" -lease 3s \
  >"$OUT/coordinator.log" 2>&1 &
pids+=($!)
for _ in $(seq 50); do
  curl -fsS "$URL/api/status" >/dev/null 2>&1 && break
  sleep 0.2
done
curl -fsS "$URL/api/status" >/dev/null

"$OUT/pok-serve" -worker -coordinator "$URL" -name worker-1 \
  -out "$OUT/worker-1" -poll 100ms >"$OUT/worker-1.log" 2>&1 &
pids+=($!)
"$OUT/pok-serve" -worker -coordinator "$URL" -name worker-2 \
  -out "$OUT/worker-2" -poll 100ms >"$OUT/worker-2.log" 2>&1 &
W2=$!
pids+=($W2)

# Single-process reference. Exit 1 (findings) is the expected outcome.
rc=0
"$OUT/pok-soak" "${SOAK_FLAGS[@]}" -out "$OUT/solo" || rc=$?
if [ "$rc" -ne 1 ]; then
  echo "fleet-smoke: solo run exited $rc, want 1 (findings)" >&2
  exit 1
fi

# The identical campaign as a fleet job, one program per cell so the
# wavefront spreads across both workers.
"$OUT/pok-soak" "${SOAK_FLAGS[@]}" -out "$OUT/fleet" \
  -submit "$URL" -cell-programs 1 &
SUBMIT=$!

# Kill worker 2 once the wavefront is moving: whatever cell it holds
# must be requeued when its lease expires and finished by worker 1.
done_count=0
for _ in $(seq 150); do
  done_count=$(curl -fsS "$URL/api/status" 2>/dev/null \
    | grep -o '"done": [0-9]*' | head -1 | grep -o '[0-9]*$' || echo 0)
  [ "${done_count:-0}" -ge 1 ] && break
  sleep 0.2
done
# Mid-campaign scrape of the corrupt job: the wavefront is moving, so
# progress and findings series must already be live.
curl -fsS "$URL/metrics" -o "$OUT/metrics-mid.prom"
grep -q '^pok_job_programs_done' "$OUT/metrics-mid.prom" || {
  echo "fleet-smoke: mid-campaign scrape is missing pok_job_programs_done" >&2
  exit 1
}

kill -9 "$W2" 2>/dev/null || true
echo "fleet-smoke: killed worker-2 at wavefront done=$done_count"

rc=0
wait "$SUBMIT" || rc=$?
if [ "$rc" -ne 1 ]; then
  echo "fleet-smoke: fleet run exited $rc, want 1 (findings)" >&2
  sed -n '1,40p' "$OUT/coordinator.log" >&2 || true
  exit 1
fi

# A short clean campaign on the surviving worker: its detection runs
# succeed, so heartbeat snapshots must stream CPI stacks to the
# coordinator — the corrupt campaign can't prove that (failed runs
# carry no cycle attribution). Scrape /metrics while the fleet is live
# and require the series the dashboard and Prometheus alerting depend
# on.
"$OUT/pok-soak" -programs 2 -seed 9 -configs slice2 -scheduler event \
  -fragments 6 -loop-iters 2 -gen-insts 2000 -reduce-tests 64 \
  -inst-ckpt 30 -q \
  -out "$OUT/clean" -submit "$URL" -cell-programs 1
curl -fsS "$URL/metrics" -o "$OUT/metrics.prom"
for series in pok_job_cpistack_cycles_total pok_job_cycles_total \
              pok_worker_insts_total pok_worker_minst_per_sec \
              pok_worker_rpc_retries_total pok_job_programs_done; do
  if ! grep -q "^$series" "$OUT/metrics.prom"; then
    echo "fleet-smoke: /metrics scrape is missing $series" >&2
    sed -n '1,60p' "$OUT/metrics.prom" >&2 || true
    exit 1
  fi
done
echo "fleet-smoke: /metrics scrape carries CPI-stack + throughput series"

# Archive the dashboard and the final fleet snapshot.
curl -fsS "$URL/" -o "$OUT/dashboard.html"
curl -fsS "$URL/api/status" -o "$OUT/status.json"
curl -fsS "$URL/api/metrics" -o "$OUT/metrics.json"

for f in findings-7.json deduped-7.json; do
  if ! diff -u "$OUT/solo/$f" "$OUT/fleet/$f"; then
    echo "fleet-smoke: $f differs between solo and fleet runs" >&2
    exit 1
  fi
done
echo "fleet-smoke: PASS — fleet findings byte-identical to the single-process run"
