#!/usr/bin/env bash
# Chaos smoke: the crash-safety CI gate for the pok-serve fleet. It
# runs the same campaign as fleet_smoke.sh, but
#
#   - the coordinator runs with a write-ahead journal (-journal),
#   - both workers talk to it through a seeded fault-injecting
#     transport (-chaos: dropped requests, dropped *responses*,
#     transport-level duplicates, synthesized 503s, delays),
#   - and the coordinator is SIGKILLed mid-campaign and restarted from
#     its journal on the same port.
#
# Pass criteria:
#
#   (a) the restarted coordinator logs a journal recovery line,
#   (b) the job completes despite the crash and the flaky network, and
#   (c) the merged findings report is byte-identical to a
#       single-process run — no finding lost, duplicated or reordered
#       by retries, duplicate deliveries or the crash.
#
# Artifacts land under $OUT (default chaos-out): solo and fleet
# findings JSON, both coordinator logs, worker logs, the journal, and
# a dashboard.html + status.json snapshot.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${OUT:-chaos-out}"
PORT="${PORT:-18924}"
URL="http://127.0.0.1:$PORT"
CHAOS="${CHAOS:-drop=0.08,dup=0.05,err=0.08,delay=0.15,maxdelay=40ms}"
# -inst-ckpt must match between the solo reference and the fleet job:
# checkpoint cadence is coverage-affecting (drain bubbles shift the
# fault stream), so only same-cadence runs are byte-identical.
SOAK_FLAGS=(-programs 6 -seed 7 -configs slice2 -scheduler event
            -fragments 6 -loop-iters 2 -gen-insts 2000 -corrupt 20
            -reduce-tests 64 -inst-ckpt 10 -q)

rm -rf "$OUT"
mkdir -p "$OUT/solo" "$OUT/fleet" "$OUT/worker-1" "$OUT/worker-2" "$OUT/journal"

go build ${RACE:+-race} -o "$OUT/pok-serve" ./cmd/pok-serve
go build ${RACE:+-race} -o "$OUT/pok-soak" ./cmd/pok-soak

pids=()
cleanup() {
  kill "${pids[@]}" 2>/dev/null || true
}
trap cleanup EXIT

start_coordinator() { # $1 = log file
  "$OUT/pok-serve" -listen "127.0.0.1:$PORT" -lease 5s \
    -journal "$OUT/journal" >"$1" 2>&1 &
  COORD=$!
  pids+=($COORD)
  for _ in $(seq 50); do
    curl -fsS "$URL/api/status" >/dev/null 2>&1 && break
    sleep 0.2
  done
  curl -fsS "$URL/api/status" >/dev/null
}

start_coordinator "$OUT/coordinator-1.log"

"$OUT/pok-serve" -worker -coordinator "$URL" -name worker-1 \
  -out "$OUT/worker-1" -poll 100ms \
  -chaos "$CHAOS" -chaos-seed 101 >"$OUT/worker-1.log" 2>&1 &
pids+=($!)
"$OUT/pok-serve" -worker -coordinator "$URL" -name worker-2 \
  -out "$OUT/worker-2" -poll 100ms \
  -chaos "$CHAOS" -chaos-seed 202 >"$OUT/worker-2.log" 2>&1 &
pids+=($!)

# Single-process reference. Exit 1 (findings) is the expected outcome.
rc=0
"$OUT/pok-soak" "${SOAK_FLAGS[@]}" -out "$OUT/solo" || rc=$?
if [ "$rc" -ne 1 ]; then
  echo "chaos-smoke: solo run exited $rc, want 1 (findings)" >&2
  exit 1
fi

# The identical campaign as a fleet job, one program per cell so the
# wavefront spreads across both workers and survives the crash mid-way.
"$OUT/pok-soak" "${SOAK_FLAGS[@]}" -out "$OUT/fleet" \
  -submit "$URL" -cell-programs 1 &
SUBMIT=$!

# SIGKILL the coordinator once the wavefront is moving — no drain, no
# shutdown marker, page cache only. The journal must carry everything.
done_count=0
for _ in $(seq 300); do
  done_count=$(curl -fsS "$URL/api/status" 2>/dev/null \
    | grep -o '"done": [0-9]*' | head -1 | grep -o '[0-9]*$' || echo 0)
  [ "${done_count:-0}" -ge 1 ] && break
  sleep 0.2
done
kill -9 "$COORD" 2>/dev/null || true
echo "chaos-smoke: SIGKILLed coordinator at wavefront done=$done_count"
sleep 1

# Restart from the journal on the same port. Workers ride the outage
# out (buffered cursors, retrying RPCs) and reconnect through their
# existing lease IDs; the submitter's poll loop rides it out too.
start_coordinator "$OUT/coordinator-2.log"

if ! grep -q "recovered .* journal records" "$OUT/coordinator-2.log"; then
  echo "chaos-smoke: restarted coordinator did not report journal recovery" >&2
  sed -n '1,20p' "$OUT/coordinator-2.log" >&2 || true
  exit 1
fi
grep -o "recovered .* journal records.*" "$OUT/coordinator-2.log" | head -1

rc=0
wait "$SUBMIT" || rc=$?
if [ "$rc" -ne 1 ]; then
  echo "chaos-smoke: fleet run exited $rc, want 1 (findings)" >&2
  echo "--- coordinator-2.log" >&2
  sed -n '1,40p' "$OUT/coordinator-2.log" >&2 || true
  echo "--- worker-1.log" >&2
  tail -20 "$OUT/worker-1.log" >&2 || true
  exit 1
fi

# Archive the dashboard and the final fleet snapshot.
curl -fsS "$URL/" -o "$OUT/dashboard.html"
curl -fsS "$URL/api/status" -o "$OUT/status.json"

for f in findings-7.json deduped-7.json; do
  if ! diff -u "$OUT/solo/$f" "$OUT/fleet/$f"; then
    echo "chaos-smoke: $f differs between solo and chaos-fleet runs" >&2
    exit 1
  fi
done
echo "chaos-smoke: PASS — findings byte-identical across coordinator crash + flaky transport"
