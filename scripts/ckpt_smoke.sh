#!/usr/bin/env bash
# Checkpoint smoke: the crash-safety CI gate for pok-sim itself. It
# runs a ~2M-instruction benchmark with periodic architectural
# checkpoints, SIGKILLs the process at a randomly chosen checkpoint
# (no drain, no cleanup — the on-disk delta chain is all that
# survives), resumes from the latest snapshot, and requires the
# resumed run's final statistics to be byte-identical to an
# uninterrupted run of the same cadence.
#
# Checkpoint cadence is coverage-affecting (each drain inserts
# pipeline bubbles), so the uninterrupted reference runs with the SAME
# -ckpt-every as the victim: the invariant under test is
#
#   crash + resume  ==  never crashed        (same cadence)
#
# Artifacts land under $OUT (default ckpt-out): both summaries, the
# victim's truncated output, the snapshot chains and a listing.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${OUT:-ckpt-out}"
BENCH="${BENCH:-gzip}"
CONFIG="${CONFIG:-slice4}"
INSTS="${INSTS:-2000000}"
EVERY="${EVERY:-150000}"
# Kill once the victim has written KILL_AT snapshots. Randomized per
# run (override KILL_AT to reproduce); the resume must work from ANY
# checkpoint, including mid-delta-chain ones.
KILL_AT="${KILL_AT:-$(( (RANDOM % 4) + 2 ))}"

rm -rf "$OUT"
mkdir -p "$OUT/ref-ckpt" "$OUT/victim-ckpt"
go build -o "$OUT/pok-sim" ./cmd/pok-sim

# Uninterrupted reference at the shared cadence.
"$OUT/pok-sim" -bench "$BENCH" -config "$CONFIG" -insts "$INSTS" \
  -ckpt-every "$EVERY" -ckpt-dir "$OUT/ref-ckpt" >"$OUT/ref.txt"

# Victim: same run, SIGKILLed once $KILL_AT snapshots exist.
"$OUT/pok-sim" -bench "$BENCH" -config "$CONFIG" -insts "$INSTS" \
  -ckpt-every "$EVERY" -ckpt-dir "$OUT/victim-ckpt" >"$OUT/victim.txt" 2>&1 &
VICTIM=$!
for _ in $(seq 1500); do
  n=$(ls "$OUT/victim-ckpt" 2>/dev/null | wc -l)
  [ "$n" -ge "$KILL_AT" ] && break
  kill -0 "$VICTIM" 2>/dev/null || break
  sleep 0.02
done
if ! kill -9 "$VICTIM" 2>/dev/null; then
  echo "ckpt-smoke: victim finished before snapshot $KILL_AT — lower EVERY or raise INSTS" >&2
  exit 1
fi
wait "$VICTIM" 2>/dev/null || true

ls -l "$OUT/victim-ckpt" >"$OUT/snapshots.txt"
latest="$OUT/victim-ckpt/$(ls "$OUT/victim-ckpt" | sort | tail -1)"
echo "ckpt-smoke: SIGKILLed after $(ls "$OUT/victim-ckpt" | wc -l) snapshot(s) (KILL_AT=$KILL_AT), resuming from $latest"

# Resume from the latest surviving snapshot; -resume chain-resolves
# deltas back to the last full rebase, verifying every section hash on
# the way.
"$OUT/pok-sim" -resume "$latest" -config "$CONFIG" -insts "$INSTS" \
  -ckpt-every "$EVERY" -ckpt-dir "$OUT/victim-ckpt" >"$OUT/resumed.txt"

# The resumed summary must be byte-identical to the uninterrupted one.
# Only the trailing snapshot-bookkeeping line (snapshot count/paths)
# legitimately differs between the two processes.
if ! diff -u <(grep -v '^wrote .* snapshot' "$OUT/ref.txt") \
             <(grep -v '^wrote .* snapshot' "$OUT/resumed.txt"); then
  echo "ckpt-smoke: resumed run diverged from the uninterrupted reference" >&2
  exit 1
fi
echo "ckpt-smoke: PASS — kill -9 at snapshot $KILL_AT, resume byte-identical to uninterrupted run"
